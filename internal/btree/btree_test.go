package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"oldelephant/internal/storage"
	"oldelephant/internal/value"
)

func intKey(i int64) []byte {
	return value.EncodeKey(nil, []value.Value{value.NewInt(i)})
}

// mustGet / mustDelete unwrap the page-I/O error returns: in these in-memory
// tests a page error is a harness bug, not a condition under test.
func mustGet(t *testing.T, tr *BTree, key []byte) ([]byte, bool) {
	t.Helper()
	v, ok, err := tr.Get(key)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	return v, ok
}

func mustDelete(t *testing.T, tr *BTree, key []byte) bool {
	t.Helper()
	ok, err := tr.Delete(key)
	if err != nil {
		t.Fatalf("Delete: %v", err)
	}
	return ok
}

func TestEmptyTree(t *testing.T) {
	tr := New(storage.NewPager(0), 0)
	if tr.Count() != 0 || tr.Height() != 1 {
		t.Fatalf("empty tree count=%d height=%d", tr.Count(), tr.Height())
	}
	if _, ok := mustGet(t, tr, intKey(1)); ok {
		t.Error("Get on empty tree should miss")
	}
	it := tr.Scan()
	if it.Next() {
		t.Error("Scan on empty tree should be empty")
	}
}

func TestInsertAndGetSequential(t *testing.T) {
	tr := New(storage.NewPager(0), -1)
	const n = 20000
	for i := 0; i < n; i++ {
		if err := tr.Insert(intKey(int64(i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tr.Count() != n {
		t.Fatalf("Count = %d", tr.Count())
	}
	if tr.Height() < 2 {
		t.Fatalf("expected multi-level tree, height=%d", tr.Height())
	}
	for _, i := range []int64{0, 1, 777, n / 2, n - 1} {
		v, ok := mustGet(t, tr, intKey(i))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Errorf("Get(%d) = %q, %v", i, v, ok)
		}
	}
	if _, ok := mustGet(t, tr, intKey(n+10)); ok {
		t.Error("Get of missing key should fail")
	}
}

func TestInsertRandomOrderFullScanSorted(t *testing.T) {
	tr := New(storage.NewPager(0), 0)
	rng := rand.New(rand.NewSource(7))
	const n = 8000
	perm := rng.Perm(n)
	for _, i := range perm {
		if err := tr.Insert(intKey(int64(i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	it := tr.Scan()
	prev := []byte(nil)
	count := 0
	for it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) > 0 {
			t.Fatalf("scan out of order at entry %d", count)
		}
		prev = append(prev[:0], it.Key()...)
		count++
	}
	if count != n {
		t.Fatalf("scan saw %d entries, want %d", count, n)
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := New(storage.NewPager(0), 0)
	for i := 0; i < 100; i++ {
		if err := tr.Insert(intKey(42), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := tr.Insert(intKey(7), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	it := tr.Seek(intKey(42), intKey(42), true)
	count := 0
	for it.Next() {
		count++
	}
	if count != 100 {
		t.Errorf("found %d duplicates of 42, want 100", count)
	}
}

func TestSeekRanges(t *testing.T) {
	tr := New(storage.NewPager(0), 0)
	for i := 0; i < 1000; i++ {
		if err := tr.Insert(intKey(int64(i*2)), []byte("x")); err != nil { // even keys 0..1998
			t.Fatal(err)
		}
	}
	collect := func(it *Iterator) []int64 {
		var out []int64
		for it.Next() {
			// decode the single int key back via scanning all possible; simpler: track via value pkg
			out = append(out, decodeIntKey(t, it.Key()))
		}
		return out
	}
	// [100, 110] inclusive
	got := collect(tr.Seek(intKey(100), intKey(110), true))
	want := []int64{100, 102, 104, 106, 108, 110}
	if !equalInts(got, want) {
		t.Errorf("inclusive range = %v, want %v", got, want)
	}
	// [100, 110) exclusive
	got = collect(tr.Seek(intKey(100), intKey(110), false))
	want = []int64{100, 102, 104, 106, 108}
	if !equalInts(got, want) {
		t.Errorf("exclusive range = %v, want %v", got, want)
	}
	// Seek between keys starts at next larger key.
	got = collect(tr.Seek(intKey(101), intKey(105), true))
	want = []int64{102, 104}
	if !equalInts(got, want) {
		t.Errorf("between-keys range = %v, want %v", got, want)
	}
	// Open-ended seek to the end.
	got = collect(tr.Seek(intKey(1994), nil, true))
	want = []int64{1994, 1996, 1998}
	if !equalInts(got, want) {
		t.Errorf("open range = %v, want %v", got, want)
	}
	// Range entirely past the end.
	got = collect(tr.Seek(intKey(5000), nil, true))
	if len(got) != 0 {
		t.Errorf("past-end range = %v, want empty", got)
	}
}

func decodeIntKey(t *testing.T, key []byte) int64 {
	t.Helper()
	// The key encodes a single numeric value; decode by binary search over
	// plausible values would be silly, so re-encode candidates isn't needed:
	// instead decode using the known layout (tag byte + 8-byte big-endian
	// transformed float). Reuse EncodeKey for comparison-based recovery.
	lo, hi := int64(-1), int64(1<<20)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(intKey(mid), key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if !bytes.Equal(intKey(lo), key) {
		t.Fatalf("could not decode key")
	}
	return lo
}

func equalInts(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDelete(t *testing.T) {
	tr := New(storage.NewPager(0), 0)
	for i := 0; i < 500; i++ {
		if err := tr.Insert(intKey(int64(i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if !mustDelete(t, tr, intKey(250)) {
		t.Fatal("delete of existing key failed")
	}
	if mustDelete(t, tr, intKey(250)) {
		t.Error("second delete should report not found")
	}
	if mustDelete(t, tr, intKey(10000)) {
		t.Error("delete of missing key should report not found")
	}
	if tr.Count() != 499 {
		t.Errorf("Count after delete = %d", tr.Count())
	}
	if _, ok := mustGet(t, tr, intKey(250)); ok {
		t.Error("deleted key still visible")
	}
	if _, ok := mustGet(t, tr, intKey(251)); !ok {
		t.Error("neighbour key lost")
	}
}

func TestBulkLoadMatchesInserts(t *testing.T) {
	pager := storage.NewPager(0)
	tr := New(pager, -1)
	const n = 30000
	i := 0
	err := tr.BulkLoad(func() ([]byte, []byte, bool) {
		if i >= n {
			return nil, nil, false
		}
		k := intKey(int64(i))
		v := []byte(fmt.Sprintf("bulk%d", i))
		i++
		return k, v, true
	}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count() != n {
		t.Fatalf("Count = %d", tr.Count())
	}
	if tr.Height() < 2 {
		t.Fatalf("height = %d", tr.Height())
	}
	// Point lookups and ordered scan.
	for _, k := range []int64{0, 1, 12345, n - 1} {
		v, ok := mustGet(t, tr, intKey(k))
		if !ok || string(v) != fmt.Sprintf("bulk%d", k) {
			t.Errorf("Get(%d) after bulk load = %q %v", k, v, ok)
		}
	}
	it := tr.Scan()
	count := 0
	var prev []byte
	for it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) > 0 {
			t.Fatal("bulk-loaded scan out of order")
		}
		prev = append(prev[:0], it.Key()...)
		count++
	}
	if count != n {
		t.Fatalf("scan after bulk load saw %d entries", count)
	}
	// Incremental inserts still work after a bulk load.
	if err := tr.Insert(intKey(-5), []byte("neg")); err != nil {
		t.Fatal(err)
	}
	v, ok := mustGet(t, tr, intKey(-5))
	if !ok || string(v) != "neg" {
		t.Error("insert after bulk load failed")
	}
}

func TestBulkLoadRejectsUnsortedInput(t *testing.T) {
	tr := New(storage.NewPager(0), 0)
	seq := []int64{1, 2, 5, 4}
	i := 0
	err := tr.BulkLoad(func() ([]byte, []byte, bool) {
		if i >= len(seq) {
			return nil, nil, false
		}
		k := intKey(seq[i])
		i++
		return k, []byte("x"), true
	}, 1.0)
	if err == nil {
		t.Fatal("expected error for unsorted bulk load input")
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	tr := New(storage.NewPager(0), 0)
	if err := tr.BulkLoad(func() ([]byte, []byte, bool) { return nil, nil, false }, 1.0); err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 0 {
		t.Errorf("Count = %d", tr.Count())
	}
	if tr.Scan().Next() {
		t.Error("empty bulk-loaded tree should have no entries")
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	tr := New(storage.NewPager(0), 0)
	big := make([]byte, storage.PageSize)
	if err := tr.Insert(intKey(1), big); err == nil {
		t.Error("expected error for oversized entry")
	}
}

func TestCompositeStringKeys(t *testing.T) {
	tr := New(storage.NewPager(0), 0)
	names := []string{"delta", "alpha", "charlie", "bravo", "echo"}
	for i, n := range names {
		key := value.EncodeKey(nil, []value.Value{value.NewString(n), value.NewInt(int64(i))})
		if err := tr.Insert(key, []byte(n)); err != nil {
			t.Fatal(err)
		}
	}
	it := tr.Scan()
	var got []string
	for it.Next() {
		got = append(got, string(it.Value()))
	}
	want := append([]string(nil), names...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("got %d entries", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("position %d: got %q want %q", i, got[i], want[i])
		}
	}
}

func TestRangeScanIOIsBounded(t *testing.T) {
	pager := storage.NewPager(0)
	tr := New(pager, -1)
	const n = 50000
	i := 0
	if err := tr.BulkLoad(func() ([]byte, []byte, bool) {
		if i >= n {
			return nil, nil, false
		}
		k := intKey(int64(i))
		i++
		return k, []byte("0123456789abcdef"), true
	}, 1.0); err != nil {
		t.Fatal(err)
	}
	pager.ResetCache()
	pager.ResetStats()
	it := tr.Seek(intKey(100), intKey(200), true)
	count := 0
	for it.Next() {
		count++
	}
	if count != 101 {
		t.Fatalf("range returned %d entries", count)
	}
	stats := pager.Stats()
	total := tr.NumLeafPages()
	if stats.PageReads > int64(tr.Height()+3) {
		t.Errorf("narrow range read %d pages (tree has %d leaves, height %d)", stats.PageReads, total, tr.Height())
	}
}

func TestPropertyRandomOperations(t *testing.T) {
	tr := New(storage.NewPager(0), 0)
	rng := rand.New(rand.NewSource(99))
	model := map[int64]int{} // key -> multiplicity
	var keys []int64
	for op := 0; op < 5000; op++ {
		switch rng.Intn(3) {
		case 0, 1: // insert
			k := int64(rng.Intn(800))
			if err := tr.Insert(intKey(k), []byte{1}); err != nil {
				t.Fatal(err)
			}
			model[k]++
			keys = append(keys, k)
		case 2: // delete
			if len(keys) == 0 {
				continue
			}
			k := keys[rng.Intn(len(keys))]
			got := mustDelete(t, tr, intKey(k))
			want := model[k] > 0
			if got != want {
				t.Fatalf("delete(%d) = %v, model says %v", k, got, want)
			}
			if want {
				model[k]--
			}
		}
	}
	// Validate totals and per-key multiplicities.
	total := 0
	for _, m := range model {
		total += m
	}
	if int(tr.Count()) != total {
		t.Fatalf("Count = %d, model = %d", tr.Count(), total)
	}
	for k, m := range model {
		it := tr.Seek(intKey(k), intKey(k), true)
		found := 0
		for it.Next() {
			found++
		}
		if found != m {
			t.Fatalf("key %d multiplicity %d, model %d", k, found, m)
		}
	}
}

// collectScan drains a full scan into (key, value) string pairs.
func collectScan(tr *BTree) []string {
	var out []string
	it := tr.Scan()
	for it.Next() {
		out = append(out, string(it.Key())+"="+string(it.Value()))
	}
	return out
}

// TestParsedLeafCacheInvalidation exercises the parsed-leaf cache across every
// mutation path: a scan populates the cache, and each of Insert, Delete, and
// BulkLoad must invalidate it so later scans see the new tree, not a stale
// parse of recycled pages.
func TestParsedLeafCacheInvalidation(t *testing.T) {
	tr := New(storage.NewPager(0), 0)
	const n = 5000
	for i := 0; i < n; i++ {
		if err := tr.Insert(intKey(int64(i*2)), []byte(fmt.Sprintf("v%d", i*2))); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	if tr.Height() < 2 {
		t.Fatalf("want multi-leaf tree, height=%d", tr.Height())
	}
	before := collectScan(tr) // warms the parsed-leaf cache
	if len(before) != n {
		t.Fatalf("scan saw %d entries, want %d", len(before), n)
	}

	// Insert an interior key: a cached stale leaf would hide it.
	if err := tr.Insert(intKey(4001), []byte("mid")); err != nil {
		t.Fatalf("insert: %v", err)
	}
	after := collectScan(tr)
	if len(after) != n+1 {
		t.Fatalf("scan after insert saw %d entries, want %d", len(after), n+1)
	}
	if !sort.StringsAreSorted(after) {
		// Key encoding sorts bytewise, so the string form is ordered too.
		t.Fatal("scan after insert not in key order")
	}

	// Delete: a stale parse would resurrect the entry.
	if !mustDelete(t, tr, intKey(4001)) {
		t.Fatal("delete missed")
	}
	if got := collectScan(tr); len(got) != n {
		t.Fatalf("scan after delete saw %d entries, want %d", len(got), n)
	}

	// BulkLoad rebuilds the tree wholesale onto fresh pages; the cache keyed
	// by old page ids must not leak into the new tree's scans.
	next := 0
	if err := tr.BulkLoad(func() ([]byte, []byte, bool) {
		if next >= 100 {
			return nil, nil, false
		}
		k, v := intKey(int64(next)), []byte(fmt.Sprintf("b%d", next))
		next++
		return k, v, true
	}, 1.0); err != nil {
		t.Fatalf("bulkload: %v", err)
	}
	got := collectScan(tr)
	if len(got) != 100 {
		t.Fatalf("scan after bulkload saw %d entries, want 100", len(got))
	}
	if got[0] != string(intKey(0))+"=b0" {
		t.Fatalf("scan after bulkload starts with %q", got[0])
	}
}

// TestIteratorsShareCachedParses runs two interleaved full scans so both ride
// the same cached leaf parses, checking neither corrupts the other (cached
// entry slices are shared read-only; misses parse into iterator-private
// scratch).
func TestIteratorsShareCachedParses(t *testing.T) {
	tr := New(storage.NewPager(0), 0)
	const n = 3000
	for i := 0; i < n; i++ {
		if err := tr.Insert(intKey(int64(i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	a, b := tr.Scan(), tr.Scan()
	for i := 0; i < n; i++ {
		if !a.Next() || !b.Next() {
			t.Fatalf("iterator ended early at %d", i)
		}
		want := fmt.Sprintf("v%d", i)
		if string(a.Value()) != want || string(b.Value()) != want {
			t.Fatalf("row %d: a=%q b=%q want %q", i, a.Value(), b.Value(), want)
		}
	}
	if a.Next() || b.Next() {
		t.Fatal("iterators should be exhausted")
	}
}

// TestNextSpansMatchesNext pins the bulk span fetch against the per-row
// iterator: same entries, same order, same stop-key clipping.
func TestNextSpansMatchesNext(t *testing.T) {
	tr := New(storage.NewPager(0), 0)
	const n = 4000
	for i := 0; i < n; i++ {
		if err := tr.Insert(intKey(int64(i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	for _, tc := range []struct {
		name     string
		mk       func() *Iterator
		wantRows int
	}{
		{"full", func() *Iterator { return tr.Scan() }, n},
		{"range", func() *Iterator { return tr.Seek(intKey(100), intKey(2099), true) }, 2000},
	} {
		ref := tc.mk()
		var want []string
		for ref.Next() {
			want = append(want, string(ref.Key())+"="+string(ref.Value()))
		}
		if len(want) != tc.wantRows {
			t.Fatalf("%s: reference iterator saw %d rows, want %d", tc.name, len(want), tc.wantRows)
		}
		it := tc.mk()
		keys, vals := make([][]byte, 192), make([][]byte, 192)
		var got []string
		for {
			m := it.NextSpans(keys, vals)
			if m == 0 {
				break
			}
			for i := 0; i < m; i++ {
				got = append(got, string(keys[i])+"="+string(vals[i]))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("%s: NextSpans saw %d rows, want %d", tc.name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: row %d = %q, want %q", tc.name, i, got[i], want[i])
			}
		}
	}
}
