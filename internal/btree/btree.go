// Package btree implements a page-backed B+-tree used for clustered and
// secondary indexes. Keys are order-preserving byte strings (produced by
// value.EncodeKey); payloads are opaque byte strings. Leaves are linked for
// range scans, and all node accesses go through the storage pager so the
// benchmark harness can account for index I/O.
package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"oldelephant/internal/storage"
)

// BTree is a B+-tree rooted at a page. Duplicate keys are allowed; entries
// with equal keys are returned in insertion order.
//
// Reads (Scan, Seek, LeafPages, morsel iterators) are safe to run from
// concurrent goroutines as long as no mutation (Insert, Delete, BulkLoad)
// runs at the same time — the serving layer's reader/writer isolation; page
// accesses themselves are serialized by the pager.
type BTree struct {
	pager    *storage.Pager
	root     storage.PageID
	height   int
	count    int64
	overhead int // per-leaf-entry overhead bytes, emulating the row header
	// leafCache memoizes LeafPages so morsel partitioning does not re-walk
	// the leaf chain on every query; any structural mutation invalidates it.
	// It is an atomic pointer because concurrent read-only queries race to
	// fill it (two sessions planning parallel scans of one table).
	leafCache atomic.Pointer[[]storage.PageID]
	// parsed caches fully-parsed leaf nodes by page id, so that repeated
	// scans, seeks, and morsel workers visiting a leaf pay readNodeInto once
	// per mutation epoch instead of once per visit. Cached entries alias
	// stable page memory (like every entry slice) and are shared read-only
	// between concurrent iterators; the RWMutex covers only the map, and the
	// same mutation paths that clear leafCache clear it wholesale. Page reads
	// still go through the pager on every visit, so a cache hit changes no
	// I/O accounting — only the parse is amortized.
	parsedMu sync.RWMutex
	parsed   map[storage.PageID]*parsedLeaf
}

// parsedLeaf is one cached leaf parse: its entries and next-leaf pointer.
type parsedLeaf struct {
	entries []entry
	next    uint64
}

// maxParsedLeaves bounds the parse cache. At a few KB of entry headers per
// leaf this caps the cache near the size of the pages it mirrors; trees with
// more leaves serve the overflow by parsing into the iterator's scratch
// buffer, exactly as every leaf was handled before the cache existed.
const maxParsedLeaves = 8192

// entry is one (key, payload) pair inside a node. In internal nodes the
// payload is an 8-byte child page id.
type entry struct {
	key []byte
	val []byte
}

// New creates an empty tree. overhead is the per-leaf-entry byte overhead
// (pass a negative value for storage.DefaultTupleOverhead, 0 for none).
func New(pager *storage.Pager, overhead int) *BTree {
	if overhead < 0 {
		overhead = storage.DefaultTupleOverhead
	}
	t := &BTree{pager: pager, overhead: overhead, parsed: make(map[storage.PageID]*parsedLeaf)}
	root := pager.Allocate()
	writeNode(root, true, nil, 0)
	t.root = root.ID()
	t.height = 1
	return t
}

// Open reattaches a tree to its pages (recovery path: root, height and count
// come from the persisted catalog meta; the pages themselves were restored by
// the data file load + WAL replay).
func Open(pager *storage.Pager, root storage.PageID, height int, count int64, overhead int) *BTree {
	if overhead < 0 {
		overhead = storage.DefaultTupleOverhead
	}
	return &BTree{
		pager: pager, root: root, height: height, count: count,
		overhead: overhead, parsed: make(map[storage.PageID]*parsedLeaf),
	}
}

// Count returns the number of entries in the tree.
func (t *BTree) Count() int64 { return t.count }

// Height returns the number of levels (1 = a single leaf).
func (t *BTree) Height() int { return t.height }

// RootPage returns the page id of the root node.
func (t *BTree) RootPage() storage.PageID { return t.root }

// NumLeafPages walks the leaf chain and returns its length. Intended for
// statistics and tests; it performs I/O. The walk reads only each leaf's Aux
// word (the next-leaf pointer) — no record parsing.
func (t *BTree) NumLeafPages() int {
	id, err := t.firstLeaf()
	n := 0
	for err == nil && id != storage.InvalidPageID {
		n++
		var pg *storage.Page
		if pg, err = t.pager.Get(id); err == nil {
			id = storage.PageID(pg.Aux())
		}
	}
	return n
}

// AllPages returns every page id the tree occupies (internal nodes and
// leaves), so DROP TABLE can hand them to the pager's freelist.
func (t *BTree) AllPages() ([]storage.PageID, error) {
	var out []storage.PageID
	var walk func(id storage.PageID) error
	walk = func(id storage.PageID) error {
		out = append(out, id)
		pg, err := t.pager.Get(id)
		if err != nil {
			return err
		}
		n := pg.NumSlots()
		if n == 0 {
			return nil
		}
		first := pg.Record(0)
		if first == nil || first[0] == recLeaf {
			return nil
		}
		if err := walk(storage.PageID(pg.Aux())); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			rec := pg.Record(i)
			if rec == nil {
				continue
			}
			_, val := recordKeyVal(rec)
			if err := walk(childID(val)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return nil, err
	}
	return out, nil
}

// Node layout. The page Aux word stores, for leaves, the next-leaf page id;
// for internal nodes, the id of the leftmost child (covering keys below the
// first separator). The first byte of every record is a leaf marker so the
// node kind is self-describing; remaining record bytes are
// uvarint(keyLen) || key || payload.
const (
	recLeaf     byte = 1
	recInternal byte = 2
)

func writeNode(pg *storage.Page, isLeaf bool, entries []entry, extra uint64) bool {
	marker := recInternal
	if isLeaf {
		marker = recLeaf
	}
	// Serialize every entry before touching the page: the entries frequently
	// alias the very page being rewritten (they come from readNode).
	recs := make([][]byte, len(entries))
	for i, e := range entries {
		rec := make([]byte, 0, 1+10+len(e.key)+len(e.val))
		rec = append(rec, marker)
		rec = binary.AppendUvarint(rec, uint64(len(e.key)))
		rec = append(rec, e.key...)
		rec = append(rec, e.val...)
		recs[i] = rec
	}
	data := pg.Data()
	for i := range data {
		data[i] = 0
	}
	reinit(pg)
	pg.SetAux(extra)
	for _, rec := range recs {
		if _, ok := pg.InsertRecord(rec, 0); !ok {
			return false
		}
	}
	return true
}

// reinit restores the empty slotted-page header on a zeroed page.
func reinit(pg *storage.Page) {
	data := pg.Data()
	binary.LittleEndian.PutUint16(data[0:2], 0)  // slots
	binary.LittleEndian.PutUint16(data[2:4], 14) // free start
	binary.LittleEndian.PutUint16(data[4:6], 0)  // free end = PageSize sentinel
}

func readNode(pg *storage.Page) (isLeaf bool, entries []entry, extra uint64) {
	return readNodeInto(pg, nil)
}

// readNodeInto is readNode appending into buf (reusing its capacity) — the
// iterator's per-leaf path, where a fresh entries slice per leaf would be the
// only allocation of an otherwise zero-copy scan. The key/val slices alias
// page memory, which the pager keeps resident for the process lifetime, so
// entries (and spans handed out from them) stay valid indefinitely.
func readNodeInto(pg *storage.Page, buf []entry) (isLeaf bool, entries []entry, extra uint64) {
	extra = pg.Aux()
	n := pg.NumSlots()
	entries = buf[:0]
	isLeaf = true
	for i := 0; i < n; i++ {
		rec := pg.Record(i)
		if rec == nil {
			continue
		}
		isLeaf = rec[0] == recLeaf
		klen, sz := binary.Uvarint(rec[1:])
		keyStart := 1 + sz
		key := rec[keyStart : keyStart+int(klen)]
		val := rec[keyStart+int(klen):]
		entries = append(entries, entry{key: key, val: val})
	}
	return isLeaf, entries, extra
}

// invalidateCaches drops the memoized leaf chain and every cached leaf parse.
// Called by the same structural mutations that rewrite pages (Insert, Delete,
// BulkLoad) before they touch any node, so readers that start after the
// mutation never observe stale parses.
func (t *BTree) invalidateCaches() {
	t.leafCache.Store(nil)
	t.parsedMu.Lock()
	clear(t.parsed)
	t.parsedMu.Unlock()
}

// loadLeaf returns the parsed form of a leaf page, serving repeated visits
// from the parse cache. The page is fetched through the pager first in every
// case, so the I/O simulation charges a cache hit identically to a parse. On
// a cache miss the leaf is parsed into a fresh slice and cached (shared=true)
// unless the cache is full, in which case it is parsed into scratch
// (shared=false) and the caller keeps ownership. Shared results are read-only
// and must never be written through.
func (t *BTree) loadLeaf(id storage.PageID, scratch []entry) (entries []entry, next uint64, shared bool, err error) {
	pg, err := t.pager.Get(id)
	if err != nil {
		return nil, 0, false, err
	}
	t.parsedMu.RLock()
	pl, ok := t.parsed[id]
	t.parsedMu.RUnlock()
	if ok {
		return pl.entries, pl.next, true, nil
	}
	full := false
	t.parsedMu.RLock()
	full = len(t.parsed) >= maxParsedLeaves
	t.parsedMu.RUnlock()
	if full {
		_, entries, next = readNodeInto(pg, scratch)
		return entries, next, false, nil
	}
	_, owned, extra := readNode(pg)
	pl = &parsedLeaf{entries: owned, next: extra}
	t.parsedMu.Lock()
	if prev, ok := t.parsed[id]; ok {
		// A concurrent reader cached the identical parse first; share it so
		// every iterator observes one stable slice.
		pl = prev
	} else {
		t.parsed[id] = pl
	}
	t.parsedMu.Unlock()
	return pl.entries, pl.next, true, nil
}

// entrySize returns the on-page footprint of an entry, including the leaf
// overhead when applicable.
func (t *BTree) entrySize(e entry, isLeaf bool) int {
	size := 1 + uvarintLen(uint64(len(e.key))) + len(e.key) + len(e.val) + 4 // +slot
	if isLeaf {
		size += t.overhead
	}
	return size
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// usableBytes is the payload capacity of a node page.
const usableBytes = storage.PageSize - 64

// nodeFits reports whether the entries fit in one page.
func (t *BTree) nodeFits(entries []entry, isLeaf bool) bool {
	total := 0
	for _, e := range entries {
		total += t.entrySize(e, isLeaf)
	}
	return total <= usableBytes
}

// Insert adds a (key, payload) entry. Keys need not be unique.
func (t *BTree) Insert(key, val []byte) error {
	if len(key)+len(val) > usableBytes/4 {
		return fmt.Errorf("btree: entry of %d bytes is too large", len(key)+len(val))
	}
	t.invalidateCaches()
	promoted, newChild, err := t.insertInto(t.root, key, val)
	if err != nil {
		return err
	}
	if newChild != storage.InvalidPageID {
		// Root split: create a new root with the old root as leftmost child.
		newRoot := t.pager.Allocate()
		ents := []entry{{key: promoted, val: childPayload(newChild)}}
		writeNode(newRoot, false, ents, uint64(t.root))
		t.root = newRoot.ID()
		t.height++
	}
	t.count++
	return nil
}

func childPayload(id storage.PageID) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(id))
	return buf[:]
}

func childID(val []byte) storage.PageID {
	return storage.PageID(binary.LittleEndian.Uint64(val))
}

// insertInto inserts into the subtree rooted at id. If the node splits it
// returns the separator key and the new right sibling's page id.
func (t *BTree) insertInto(id storage.PageID, key, val []byte) ([]byte, storage.PageID, error) {
	pg, err := t.pager.Get(id)
	if err != nil {
		return nil, storage.InvalidPageID, err
	}
	isLeaf, entries, extra := readNode(pg)
	if isLeaf {
		pos := upperBound(entries, key)
		entries = append(entries, entry{})
		copy(entries[pos+1:], entries[pos:])
		entries[pos] = entry{key: append([]byte(nil), key...), val: append([]byte(nil), val...)}
		if t.nodeFits(entries, true) {
			t.pager.BeforeWrite(id)
			writeNode(pg, true, entries, extra)
			return nil, storage.InvalidPageID, nil
		}
		// Split the leaf. The separator must be copied before the left page is
		// rewritten because the entries alias the page's memory.
		mid := len(entries) / 2
		sep := append([]byte(nil), entries[mid].key...)
		right := t.pager.Allocate()
		writeNode(right, true, entries[mid:], extra) // right inherits next pointer
		t.pager.BeforeWrite(id)
		writeNode(pg, true, entries[:mid], uint64(right.ID()))
		return sep, right.ID(), nil
	}
	// Internal node: find child covering key.
	childIdx := -1 // -1 means leftmost child (extra)
	for i := range entries {
		if bytes.Compare(entries[i].key, key) <= 0 {
			childIdx = i
		} else {
			break
		}
	}
	var child storage.PageID
	if childIdx == -1 {
		child = storage.PageID(extra)
	} else {
		child = childID(entries[childIdx].val)
	}
	promoted, newChild, err := t.insertInto(child, key, val)
	if err != nil || newChild == storage.InvalidPageID {
		return nil, storage.InvalidPageID, err
	}
	// Insert the separator after childIdx.
	ins := entry{key: promoted, val: childPayload(newChild)}
	pos := childIdx + 1
	entries = append(entries, entry{})
	copy(entries[pos+1:], entries[pos:])
	entries[pos] = ins
	if t.nodeFits(entries, false) {
		t.pager.BeforeWrite(id)
		writeNode(pg, false, entries, extra)
		return nil, storage.InvalidPageID, nil
	}
	// Split the internal node: middle key moves up.
	mid := len(entries) / 2
	sep := append([]byte(nil), entries[mid].key...)
	right := t.pager.Allocate()
	writeNode(right, false, entries[mid+1:], uint64(childID(entries[mid].val)))
	t.pager.BeforeWrite(id)
	writeNode(pg, false, entries[:mid], extra)
	return sep, right.ID(), nil
}

// upperBound returns the index of the first entry whose key is strictly
// greater than key (so equal keys keep insertion order).
func upperBound(entries []entry, key []byte) int {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(entries[mid].key, key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lowerBound returns the index of the first entry whose key is >= key.
func lowerBound(entries []entry, key []byte) int {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(entries[mid].key, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Delete removes the first entry with exactly the given key and payload
// prefix (payload may be nil to match any). It returns true if an entry was
// removed. Nodes are not rebalanced: the workload is read-mostly and
// underfull nodes only waste space, never correctness.
func (t *BTree) Delete(key []byte) (bool, error) {
	t.invalidateCaches()
	id, err := t.leafFor(key)
	if err != nil {
		return false, err
	}
	for id != storage.InvalidPageID {
		pg, err := t.pager.Get(id)
		if err != nil {
			return false, err
		}
		_, entries, extra := readNode(pg)
		for i := range entries {
			cmp := bytes.Compare(entries[i].key, key)
			if cmp > 0 {
				return false, nil
			}
			if cmp == 0 {
				entries = append(entries[:i], entries[i+1:]...)
				t.pager.BeforeWrite(id)
				writeNode(pg, true, entries, extra)
				t.count--
				return true, nil
			}
		}
		id = storage.PageID(extra)
	}
	return false, nil
}

// recordKeyVal splits one node record into its key and payload without
// materializing the whole node — the descent fast path.
func recordKeyVal(rec []byte) (key, val []byte) {
	klen, sz := binary.Uvarint(rec[1:])
	keyStart := 1 + sz
	return rec[keyStart : keyStart+int(klen)], rec[keyStart+int(klen):]
}

// leafFor descends to the first leaf that may contain key. Routing uses a
// strict comparison so that, with duplicate keys split across leaves, the
// leftmost occurrence is always reachable (iterators follow leaf links).
// Each internal node is binary-searched through its slot directory directly
// — O(log fanout) record parses per level instead of materializing every
// entry, which is what keeps a point seek's descent cheap enough for the
// serving layer's prepared-statement hot path.
func (t *BTree) leafFor(key []byte) (storage.PageID, error) {
	id := t.root
	for {
		pg, err := t.pager.Get(id)
		if err != nil {
			return storage.InvalidPageID, err
		}
		n := pg.NumSlots()
		if n == 0 {
			return id, nil // only an empty root leaf has no records
		}
		first := pg.Record(0)
		if first == nil || first[0] == recLeaf {
			return id, nil
		}
		// Find the number of separators strictly below key; the child left
		// of that position covers the key.
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			k, _ := recordKeyVal(pg.Record(mid))
			if bytes.Compare(k, key) < 0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == 0 {
			id = storage.PageID(pg.Aux()) // leftmost child
		} else {
			_, val := recordKeyVal(pg.Record(lo - 1))
			id = childID(val)
		}
	}
}

// firstLeaf returns the leftmost leaf page. The descent inspects only each
// node's first record marker and Aux word (the leftmost child) — no parsing.
func (t *BTree) firstLeaf() (storage.PageID, error) {
	id := t.root
	for {
		pg, err := t.pager.Get(id)
		if err != nil {
			return storage.InvalidPageID, err
		}
		if pg.NumSlots() == 0 {
			return id, nil // only an empty root leaf has no records
		}
		first := pg.Record(0)
		if first == nil || first[0] == recLeaf {
			return id, nil
		}
		id = storage.PageID(pg.Aux())
	}
}

// Iterator walks leaf entries in key order.
type Iterator struct {
	tree     *BTree
	leaf     storage.PageID
	entries  []entry
	pos      int
	stopKey  []byte // exclusive upper bound when stopExcl, inclusive otherwise
	stopIncl bool
	done     bool
	// leavesLeft bounds how many further leaf pages the iterator may load
	// (-1 = unbounded). Leaf-range iterators (ScanLeaves) use it to stop at
	// their partition boundary instead of a key.
	leavesLeft int
	// scratch is the iterator-owned parse buffer for leaves served outside
	// the tree's parse cache. It is deliberately separate from entries: when
	// a leaf comes from the cache, entries aliases the shared cached slice,
	// and parsing the next (uncached) leaf into it would overwrite memory
	// other iterators are reading.
	scratch []entry
	err     error
}

// Err returns the first page-access error the iterator hit. Next reports
// exhaustion on error, so callers that see false must check Err to
// distinguish end-of-range from a failed page read.
func (it *Iterator) Err() error { return it.err }

// Key returns the current entry's key. Valid only after Next reported true.
// The slice aliases page memory, which stays resident and unmodified for as
// long as the tree is not mutated — scans may hold key spans across Next
// calls without copying.
func (it *Iterator) Key() []byte { return it.entries[it.pos-1].key }

// Value returns the current entry's payload. Valid only after Next reported
// true. Like Key, the slice aliases stable page memory; the projected scan
// fill hands sub-spans of it straight to the typed tuple decoders.
func (it *Iterator) Value() []byte { return it.entries[it.pos-1].val }

// Next advances the iterator and reports whether an entry is available.
func (it *Iterator) Next() bool {
	if it.done {
		return false
	}
	for {
		if it.pos < len(it.entries) {
			e := it.entries[it.pos]
			if it.stopKey != nil {
				cmp := bytes.Compare(e.key, it.stopKey)
				if cmp > 0 || (cmp == 0 && !it.stopIncl) {
					it.done = true
					return false
				}
			}
			it.pos++
			return true
		}
		if it.leaf == storage.InvalidPageID || it.leavesLeft == 0 {
			it.done = true
			return false
		}
		if it.leavesLeft > 0 {
			it.leavesLeft--
		}
		// Cached leaves hand back a shared read-only parse; misses reuse the
		// iterator's scratch buffer (Key()/Value() spans alias page memory,
		// not the entry slice, so recycling scratch is invisible to callers).
		entries, extra, shared, err := it.tree.loadLeaf(it.leaf, it.scratch)
		if err != nil {
			it.err = err
			it.done = true
			return false
		}
		if !shared {
			it.scratch = entries
		}
		it.entries = entries
		it.pos = 0
		it.leaf = storage.PageID(extra)
		if len(entries) == 0 && it.leaf == storage.InvalidPageID {
			it.done = true
			return false
		}
	}
}

// NextSpans bulk-advances the iterator, filling keys (when non-nil) and vals
// with up to len(vals) entries' key/value spans, and returns how many it
// filled — fewer only at exhaustion. It is Next/Key/Value with the per-row
// call overhead and bound checks hoisted out of the loop: batch fills drain a
// whole cached leaf parse with one call per batch. The spans alias page
// memory exactly as Key/Value do.
func (it *Iterator) NextSpans(keys, vals [][]byte) int {
	n := 0
	for n < len(vals) {
		if it.pos >= len(it.entries) {
			if !it.advanceLeaf() {
				break
			}
			continue
		}
		entries := it.entries[it.pos:]
		if want := len(vals) - n; len(entries) > want {
			entries = entries[:want]
		}
		if it.stopKey != nil {
			// Clip the run at the stop key; entries within a leaf are sorted,
			// so everything before the first out-of-bound entry is in range.
			for i := range entries {
				cmp := bytes.Compare(entries[i].key, it.stopKey)
				if cmp > 0 || (cmp == 0 && !it.stopIncl) {
					entries = entries[:i]
					it.done = true
					break
				}
			}
		}
		for i := range entries {
			vals[n+i] = entries[i].val
		}
		if keys != nil {
			for i := range entries {
				keys[n+i] = entries[i].key
			}
		}
		it.pos += len(entries)
		n += len(entries)
		if it.done {
			break
		}
	}
	return n
}

// advanceLeaf loads the next leaf into the iterator, returning false at the
// end of the range. On return with true, entries is non-empty... or the next
// iteration advances again (empty trailing leaves).
func (it *Iterator) advanceLeaf() bool {
	for {
		if it.done {
			return false
		}
		if it.pos < len(it.entries) {
			return true
		}
		if it.leaf == storage.InvalidPageID || it.leavesLeft == 0 {
			it.done = true
			return false
		}
		if it.leavesLeft > 0 {
			it.leavesLeft--
		}
		entries, extra, shared, err := it.tree.loadLeaf(it.leaf, it.scratch)
		if err != nil {
			it.err = err
			it.done = true
			return false
		}
		if !shared {
			it.scratch = entries
		}
		it.entries = entries
		it.pos = 0
		it.leaf = storage.PageID(extra)
		if len(entries) == 0 && it.leaf == storage.InvalidPageID {
			it.done = true
			return false
		}
	}
}

// Scan returns an iterator over the whole tree in key order.
func (t *BTree) Scan() *Iterator {
	first, err := t.firstLeaf()
	if err != nil {
		return &Iterator{tree: t, done: true, err: err}
	}
	return &Iterator{tree: t, leaf: first, leavesLeft: -1}
}

// LeafPages returns the ids of every leaf page in chain (key) order. It is
// how parallel scans partition a tree into morsels: each morsel is a run of
// consecutive leaves handed to ScanLeaves. The chain walk is memoized until
// the next structural mutation, so repeated queries do not re-pay it.
// Callers must treat the result as read-only.
func (t *BTree) LeafPages() ([]storage.PageID, error) {
	if cached := t.leafCache.Load(); cached != nil {
		return *cached, nil
	}
	var out []storage.PageID
	id, err := t.firstLeaf()
	if err != nil {
		return nil, err
	}
	for id != storage.InvalidPageID {
		out = append(out, id)
		pg, err := t.pager.Get(id)
		if err != nil {
			return nil, err
		}
		id = storage.PageID(pg.Aux())
	}
	t.leafCache.Store(&out)
	return out, nil
}

// LeafRange returns the ids of the consecutive leaf pages that can contain
// keys in [start, stop] — the leaf that Seek(start, ...) would begin on
// through the last leaf whose first key does not pass the stop bound. It is
// how parallel range scans partition a seek into morsels: each morsel is a
// run of consecutive leaves handed to SeekLeaves. nil bounds are open (nil
// start begins at the first leaf; nil stop ends at the last). The walk reads
// only the leaves of the range, plus one root-to-leaf descent.
func (t *BTree) LeafRange(start, stop []byte, stopIncl bool) ([]storage.PageID, error) {
	var out []storage.PageID
	var id storage.PageID
	var err error
	if start != nil {
		id, err = t.leafFor(start)
	} else {
		id, err = t.firstLeaf()
	}
	if err != nil {
		return nil, err
	}
	for id != storage.InvalidPageID {
		pg, err := t.pager.Get(id)
		if err != nil {
			return nil, err
		}
		// Only the first record's key decides the stop bound; the leaf is not
		// parsed. A missing first record skips the check (the extra leaf is
		// harmless: iterators enforce the stop key themselves).
		if stop != nil && pg.NumSlots() > 0 {
			if rec := pg.Record(0); rec != nil {
				k, _ := recordKeyVal(rec)
				cmp := bytes.Compare(k, stop)
				if cmp > 0 || (cmp == 0 && !stopIncl) {
					break
				}
			}
		}
		out = append(out, id)
		id = storage.PageID(pg.Aux())
	}
	return out, nil
}

// SeekLeaves returns an iterator over the entries of count consecutive leaf
// pages starting at start (a page id from LeafRange), bounded above by the
// stop key exactly like Seek. A non-nil startKey positions the iterator at
// the first entry >= startKey within the first leaf — the form used by the
// first morsel of a partitioned seek; later morsels pass nil and start at
// their leaf's first entry. Concatenating the iterators of a partition of
// LeafRange(start, stop, stopIncl) — startKey on the first, nil on the rest —
// reproduces Seek(start, stop, stopIncl) exactly.
func (t *BTree) SeekLeaves(start storage.PageID, count int, startKey, stop []byte, stopIncl bool) *Iterator {
	it := &Iterator{tree: t, stopKey: stop, stopIncl: stopIncl, leaf: start, leavesLeft: count}
	if startKey != nil && count > 0 {
		entries, extra, shared, err := t.loadLeaf(start, nil)
		if err != nil {
			return &Iterator{tree: t, done: true, err: err}
		}
		if !shared {
			it.scratch = entries
		}
		it.entries = entries
		it.pos = lowerBound(entries, startKey)
		it.leaf = storage.PageID(extra)
		it.leavesLeft = count - 1
	}
	return it
}

// ScanLeaves returns an iterator over the entries of count consecutive leaf
// pages starting at start (a page id from LeafPages). Concatenating the
// iterators of a partition of the leaf chain reproduces Scan exactly.
func (t *BTree) ScanLeaves(start storage.PageID, count int) *Iterator {
	return &Iterator{tree: t, leaf: start, leavesLeft: count}
}

// Seek returns an iterator positioned at the first entry with key >= start.
// If stop is non-nil the iteration ends at stop (inclusive when stopIncl).
func (t *BTree) Seek(start, stop []byte, stopIncl bool) *Iterator {
	it := &Iterator{tree: t, stopKey: stop, stopIncl: stopIncl, leavesLeft: -1}
	if start == nil {
		first, err := t.firstLeaf()
		if err != nil {
			return &Iterator{tree: t, done: true, err: err}
		}
		it.leaf = first
		return it
	}
	leafID, err := t.leafFor(start)
	if err != nil {
		return &Iterator{tree: t, done: true, err: err}
	}
	entries, extra, shared, err := t.loadLeaf(leafID, nil)
	if err != nil {
		return &Iterator{tree: t, done: true, err: err}
	}
	if !shared {
		it.scratch = entries
	}
	it.entries = entries
	it.pos = lowerBound(entries, start)
	it.leaf = storage.PageID(extra)
	return it
}

// Get returns the payload of the first entry matching key exactly.
func (t *BTree) Get(key []byte) ([]byte, bool, error) {
	it := t.Seek(key, key, true)
	if it.Next() {
		return it.Value(), true, nil
	}
	return nil, false, it.Err()
}

// BulkLoad builds the tree from entries that are already sorted by key,
// replacing the current contents. It packs leaves to fillFactor (0 < f <= 1)
// and builds the internal levels bottom-up; this is the fast path used by
// table loading and c-table construction. It returns an error if the input
// is not sorted.
func (t *BTree) BulkLoad(next func() (key, val []byte, ok bool), fillFactor float64) error {
	t.invalidateCaches()
	if fillFactor <= 0 || fillFactor > 1 {
		fillFactor = 1.0
	}
	target := int(float64(usableBytes) * fillFactor)
	var (
		leafIDs   []storage.PageID
		firstKeys [][]byte
		cur       []entry
		curSize   int
		prevKey   []byte
		n         int64
	)
	flushLeaf := func() error {
		pg := t.pager.Allocate()
		writeNode(pg, true, cur, 0)
		if len(leafIDs) > 0 {
			prevID := leafIDs[len(leafIDs)-1]
			prev, err := t.pager.Get(prevID)
			if err != nil {
				return err
			}
			t.pager.BeforeWrite(prevID)
			prev.SetAux(uint64(pg.ID()))
		}
		leafIDs = append(leafIDs, pg.ID())
		if len(cur) > 0 {
			firstKeys = append(firstKeys, append([]byte(nil), cur[0].key...))
		} else {
			firstKeys = append(firstKeys, nil)
		}
		cur = nil
		curSize = 0
		return nil
	}
	for {
		key, val, ok := next()
		if !ok {
			break
		}
		if prevKey != nil && bytes.Compare(key, prevKey) < 0 {
			return fmt.Errorf("btree: bulk load input not sorted")
		}
		prevKey = append(prevKey[:0], key...)
		e := entry{key: append([]byte(nil), key...), val: append([]byte(nil), val...)}
		sz := t.entrySize(e, true)
		if curSize+sz > target && len(cur) > 0 {
			if err := flushLeaf(); err != nil {
				return err
			}
		}
		cur = append(cur, e)
		curSize += sz
		n++
	}
	if err := flushLeaf(); err != nil {
		return err
	}
	t.count = n
	// Build internal levels.
	level := leafIDs
	keys := firstKeys
	t.height = 1
	for len(level) > 1 {
		var nextLevel []storage.PageID
		var nextKeys [][]byte
		i := 0
		for i < len(level) {
			// Each internal node gets as many children as fit.
			leftmost := level[i]
			nodeFirstKey := keys[i]
			i++
			var ents []entry
			size := 0
			for i < len(level) {
				e := entry{key: keys[i], val: childPayload(level[i])}
				sz := t.entrySize(e, false)
				if size+sz > target && len(ents) > 0 {
					break
				}
				ents = append(ents, e)
				size += sz
				i++
			}
			pg := t.pager.Allocate()
			writeNode(pg, false, ents, uint64(leftmost))
			nextLevel = append(nextLevel, pg.ID())
			nextKeys = append(nextKeys, nodeFirstKey)
		}
		level = nextLevel
		keys = nextKeys
		t.height++
	}
	t.root = level[0]
	return nil
}
