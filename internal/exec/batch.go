package exec

import (
	"oldelephant/internal/expr"
	"oldelephant/internal/value"
	"oldelephant/internal/vector"
)

// DefaultBatchSize is the number of rows a batch-producing operator emits per
// NextBatch call. 1024 follows MonetDB/X100: large enough to amortize the
// per-batch interpretation overhead, small enough that a batch's working set
// stays cache resident.
const DefaultBatchSize = 1024

// Batch is a column-major slice of rows flowing between vectorized operators:
// Cols[c] is the vector of column c, and every vector has the same logical
// length. Vectors carry their own encoding (Flat, Const, RLE, Dict), so a
// batch can flow through the executor in compressed form; decompression is
// lazy and happens only at protocol boundaries (row adapters, joins, result
// drains). An optional selection vector Sel lists the live physical row
// indices in ascending order (nil means all rows are live), which lets
// filters drop rows without copying the surviving ones.
type Batch struct {
	Cols []*vector.Vector
	Sel  []int
	// n tracks the physical row count for zero-column batches (a constant
	// SELECT's single empty row, for example); with columns present the
	// column length is authoritative.
	n int
}

// NewBatch returns an empty batch with ncols Flat columns, each with the
// given row capacity.
func NewBatch(ncols, capacity int) *Batch {
	cols := make([]*vector.Vector, ncols)
	for i := range cols {
		cols[i] = vector.NewFlatCap(capacity)
	}
	return &Batch{Cols: cols}
}

// NewBatchFromVectors wraps pre-built column vectors (possibly compressed)
// into a batch. All vectors must have the same length.
func NewBatchFromVectors(cols []*vector.Vector) *Batch {
	b := &Batch{Cols: cols}
	if len(cols) > 0 {
		b.n = cols[0].Len()
	}
	return b
}

// NumRows returns the number of live (selected) rows.
func (b *Batch) NumRows() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.physRows()
}

// physRows returns the physical row count, selected or not.
func (b *Batch) physRows() int {
	if len(b.Cols) == 0 {
		return b.n
	}
	return b.Cols[0].Len()
}

// PhysIdx maps a live row position (0..NumRows-1) to its physical index.
func (b *Batch) PhysIdx(i int) int {
	if b.Sel != nil {
		return b.Sel[i]
	}
	return i
}

// AppendRow appends one row to a batch under construction. It must not be
// called on a batch with a selection vector or with compressed columns.
func (b *Batch) AppendRow(row Row) {
	for c := range b.Cols {
		b.Cols[c].Append(row[c])
	}
	b.n++
}

// Row materializes live row i as a freshly allocated row.
func (b *Batch) Row(i int) Row {
	p := b.PhysIdx(i)
	out := make(Row, len(b.Cols))
	for c := range b.Cols {
		out[c] = b.Cols[c].Get(p)
	}
	return out
}

// AppendRows appends every live row to dst (row-major) and returns it. It is
// how the engine's result collection converts batches back to rows — a
// protocol boundary, so compressed columns are decompressed here (once per
// column, not once per access).
func (b *Batch) AppendRows(dst []Row) []Row {
	n := b.NumRows()
	if n == 0 {
		return dst
	}
	flats := make([][]value.Value, len(b.Cols))
	for c := range b.Cols {
		flats[c] = b.Cols[c].Flat()
	}
	for i := 0; i < n; i++ {
		p := b.PhysIdx(i)
		out := make(Row, len(b.Cols))
		for c := range flats {
			out[c] = flats[c][p]
		}
		dst = append(dst, out)
	}
	return dst
}

// BatchOperator is a physical plan node that produces rows a batch at a time.
// Operators in this package implement both Operator and BatchOperator over
// shared Open/Close; the engine picks one pull protocol per query.
type BatchOperator interface {
	// Schema describes the rows carried by produced batches.
	Schema() []ColumnInfo
	// Open prepares the operator for iteration.
	Open() error
	// NextBatch returns the next non-empty batch; ok is false at end of
	// input. Parents must not retain or mutate a returned batch's columns
	// after the following NextBatch call.
	NextBatch() (b *Batch, ok bool, err error)
	// Close releases resources.
	Close() error
}

// AsBatchOperator views a row operator as a batch operator: operators that
// are batch-native are returned as-is, anything else (joins, user-supplied
// operators) is bridged with a BatchSource adapter.
func AsBatchOperator(op Operator) BatchOperator {
	if b, ok := op.(BatchOperator); ok {
		return b
	}
	return &BatchSource{Input: op}
}

// AsRowOperator views a batch operator as a row operator, bridging with a
// RowSource adapter when it is not row-native.
func AsRowOperator(op BatchOperator) Operator {
	if r, ok := op.(Operator); ok {
		return r
	}
	return &RowSource{Input: op}
}

// BatchSource adapts a row-at-a-time operator into the batch protocol by
// accumulating up to DefaultBatchSize rows per call. It is the bridge that
// lets not-yet-vectorized operators (joins, in particular) compose with
// vectorized parents in one plan.
type BatchSource struct {
	Input Operator
}

// Schema implements BatchOperator.
func (s *BatchSource) Schema() []ColumnInfo { return s.Input.Schema() }

// Open implements BatchOperator.
func (s *BatchSource) Open() error { return s.Input.Open() }

// NextBatch implements BatchOperator.
func (s *BatchSource) NextBatch() (*Batch, bool, error) {
	b := NewBatch(len(s.Input.Schema()), DefaultBatchSize)
	for b.physRows() < DefaultBatchSize {
		row, ok, err := s.Input.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		b.AppendRow(row)
	}
	if b.physRows() == 0 {
		return nil, false, nil
	}
	return b, true, nil
}

// Close implements BatchOperator.
func (s *BatchSource) Close() error { return s.Input.Close() }

// RowSource adapts a batch operator into the row protocol, emitting the live
// rows of each batch one at a time. It lets a row-only parent (a join's
// input, for example) sit on top of a batch-native subtree.
type RowSource struct {
	Input BatchOperator

	cur *Batch
	pos int
}

// Schema implements Operator.
func (s *RowSource) Schema() []ColumnInfo { return s.Input.Schema() }

// Open implements Operator.
func (s *RowSource) Open() error {
	s.cur, s.pos = nil, 0
	return s.Input.Open()
}

// Next implements Operator.
func (s *RowSource) Next() (Row, bool, error) {
	for s.cur == nil || s.pos >= s.cur.NumRows() {
		b, ok, err := s.Input.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		s.cur, s.pos = b, 0
	}
	row := s.cur.Row(s.pos)
	s.pos++
	return row, true, nil
}

// Close implements Operator.
func (s *RowSource) Close() error {
	s.cur = nil
	return s.Input.Close()
}

// DrainBatches runs a batch operator to completion, returning all produced
// rows in row-major form.
func DrainBatches(op BatchOperator) ([]Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []Row
	for {
		b, ok, err := op.NextBatch()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = b.AppendRows(out)
	}
}

// DrainVectorized runs an operator to completion through the batch protocol
// (bridging row-only operators as needed). It is the vectorized counterpart
// of Drain used by the engine's result collection.
func DrainVectorized(op Operator) ([]Row, error) {
	return DrainBatches(AsBatchOperator(op))
}

// evalProjectionVectors evaluates a list of expressions over a batch,
// returning physically aligned output vectors (encoding preserved where the
// kernels allow). Shared by Project and the vectorized aggregates.
func evalProjectionVectors(exprs []expr.Expr, b *Batch) ([]*vector.Vector, error) {
	n := b.physRows()
	out := make([]*vector.Vector, len(exprs))
	for i, e := range exprs {
		vec, err := expr.EvalVector(e, b.Cols, b.Sel, n)
		if err != nil {
			return nil, err
		}
		out[i] = vec
	}
	return out, nil
}

// batchFromRows copies up to DefaultBatchSize rows starting at *pos into a
// fresh batch, advancing *pos. It is how operators that materialize rows
// (sort, hash aggregation, values) emit them batch-wise.
func batchFromRows(rows []Row, pos *int, ncols int) *Batch {
	b := NewBatch(ncols, DefaultBatchSize)
	for *pos < len(rows) && b.physRows() < DefaultBatchSize {
		b.AppendRow(rows[*pos])
		*pos++
	}
	return b
}

// projectedBatch wraps projection output vectors into a batch that preserves
// the input's selection and physical row count.
func projectedBatch(vecs []*vector.Vector, src *Batch) *Batch {
	return &Batch{Cols: vecs, Sel: src.Sel, n: src.physRows()}
}
