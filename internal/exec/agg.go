package exec

import (
	"context"
	"fmt"
	"sort"

	"oldelephant/internal/expr"
	"oldelephant/internal/value"
	"oldelephant/internal/vector"
)

// AggKind enumerates the supported aggregate functions.
type AggKind int

// Aggregate functions.
const (
	AggCountStar AggKind = iota
	AggCount
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String returns the SQL name of the aggregate.
func (k AggKind) String() string {
	switch k {
	case AggCountStar, AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	default:
		return fmt.Sprintf("AggKind(%d)", int(k))
	}
}

// AggSpec is one aggregate in the output of a grouping operator.
type AggSpec struct {
	Kind AggKind
	Arg  expr.Expr // nil for COUNT(*)
	Name string    // output column label
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	count   int64
	sum     float64
	sumInt  int64
	intOnly bool
	min     value.Value
	max     value.Value
	seen    bool
}

func newAggState() *aggState {
	return &aggState{intOnly: true, min: value.Null(), max: value.Null()}
}

func (s *aggState) add(v value.Value, kind AggKind) { s.addN(v, 1, kind) }

// addN folds reps occurrences of v into the state at once: COUNT and SUM
// over a run of equal values collapse to one addition and one multiply,
// MIN/MAX to a single comparison. It is how the vectorized aggregates
// consume RLE runs as (value, count) pairs. Integer sums stay exact; float
// sums fold the run as v*reps, which can round differently from repeated
// addition — SQL leaves float aggregation order unspecified, and consumers
// comparing against a row-at-a-time sum must allow a tolerance.
func (s *aggState) addN(v value.Value, reps int64, kind AggKind) {
	if kind == AggCountStar {
		s.count += reps
		return
	}
	if v.IsNull() {
		return
	}
	s.count += reps
	s.seen = true
	switch kind {
	case AggSum, AggAvg:
		if v.Kind == value.KindFloat {
			s.intOnly = false
		}
		s.sum += v.Float() * float64(reps)
		s.sumInt += v.Int() * reps
	case AggMin:
		if s.min.IsNull() || value.Compare(v, s.min) < 0 {
			s.min = v
		}
	case AggMax:
		if s.max.IsNull() || value.Compare(v, s.max) > 0 {
			s.max = v
		}
	}
}

// merge folds another partial state for the same group and aggregate into s —
// the partial→final combine step of parallel aggregation. COUNT and SUM add,
// MIN/MAX compare, AVG adds its sum and count. Integer sums stay exact; float
// sums adopt the merge order's rounding, so callers merge partials in a
// deterministic (morsel) order.
func (s *aggState) merge(o *aggState, kind AggKind) {
	s.count += o.count
	s.seen = s.seen || o.seen
	switch kind {
	case AggSum, AggAvg:
		s.intOnly = s.intOnly && o.intOnly
		s.sum += o.sum
		s.sumInt += o.sumInt
	case AggMin:
		if !o.min.IsNull() && (s.min.IsNull() || value.Compare(o.min, s.min) < 0) {
			s.min = o.min
		}
	case AggMax:
		if !o.max.IsNull() && (s.max.IsNull() || value.Compare(o.max, s.max) > 0) {
			s.max = o.max
		}
	}
}

func (s *aggState) result(kind AggKind) value.Value {
	switch kind {
	case AggCountStar, AggCount:
		return value.NewInt(s.count)
	case AggSum:
		if !s.seen {
			return value.Null()
		}
		if s.intOnly {
			return value.NewInt(s.sumInt)
		}
		return value.NewFloat(s.sum)
	case AggAvg:
		if s.count == 0 {
			return value.Null()
		}
		return value.NewFloat(s.sum / float64(s.count))
	case AggMin:
		return s.min
	case AggMax:
		return s.max
	default:
		return value.Null()
	}
}

// aggSchema builds the output schema of a grouping operator: the group-by
// columns (in order) followed by one column per aggregate.
func aggSchema(input Operator, groupBy []int, aggs []AggSpec) []ColumnInfo {
	return aggSchemaFromCols(input.Schema(), groupBy, aggs)
}

// aggSchemaFromCols is aggSchema over an input schema already in hand (the
// parallel aggregates build theirs from a morsel pipeline's schema).
func aggSchemaFromCols(in []ColumnInfo, groupBy []int, aggs []AggSpec) []ColumnInfo {
	out := make([]ColumnInfo, 0, len(groupBy)+len(aggs))
	for _, g := range groupBy {
		out = append(out, in[g])
	}
	for _, a := range aggs {
		name := a.Name
		if name == "" {
			name = a.Kind.String()
		}
		kind := value.KindInt
		switch a.Kind {
		case AggAvg:
			kind = value.KindFloat
		case AggSum, AggMin, AggMax:
			if col, ok := a.Arg.(*expr.Column); ok && col.Index < len(in) {
				kind = in[col.Index].Kind
			} else {
				kind = value.KindFloat
			}
		}
		out = append(out, ColumnInfo{Name: name, Kind: kind})
	}
	return out
}

// HashAggregate groups its input with a hash table; input order is
// irrelevant and output order is the group-key order (sorted for
// determinism). The build is deferred to the first Next/NextBatch call so the
// input can be drained through whichever pull protocol the parent is using.
type HashAggregate struct {
	Input   Operator
	GroupBy []int
	Aggs    []AggSpec

	schema  []ColumnInfo
	binput  BatchOperator
	results []Row
	built   bool
	pos     int
	// ctx, when set by ApplyContext after Open, is checked inside the build
	// drain so cancellation is observed mid-aggregation. Open clears it.
	ctx context.Context
}

// NewHashAggregate builds a hash-based grouping operator.
func NewHashAggregate(input Operator, groupBy []int, aggs []AggSpec) *HashAggregate {
	return &HashAggregate{Input: input, GroupBy: groupBy, Aggs: aggs, schema: aggSchema(input, groupBy, aggs)}
}

// Schema implements Operator.
func (h *HashAggregate) Schema() []ColumnInfo { return h.schema }

// Open implements Operator.
func (h *HashAggregate) Open() error {
	h.results, h.built, h.pos = nil, false, 0
	h.binput = AsBatchOperator(h.Input)
	h.ctx = nil
	return h.Input.Open()
}

// aggGroup is one hash-table entry during the build.
type aggGroup struct {
	keys   Row
	states []*aggState
}

func newAggGroup(keys Row, naggs int) *aggGroup {
	grp := &aggGroup{keys: keys, states: make([]*aggState, naggs)}
	for i := range grp.states {
		grp.states[i] = newAggState()
	}
	return grp
}

// hashAggBuilder accumulates grouped aggregate state batch- or row-wise. It
// is the build machinery shared by HashAggregate and the per-morsel partial
// aggregations of ParallelHashAggregate: concurrent workers each fill a
// builder, the partials combine with mergeFrom, and finish renders the
// key-sorted result rows — so serial and parallel plans produce groups in
// the identical order.
type hashAggBuilder struct {
	groupBy []int
	aggs    []AggSpec
	groups  map[string]*aggGroup
	// fast maps a single numeric group-by key (its NumericSortKey word) to
	// its group without the per-row encode and string allocation. Grouping by
	// that word is exactly equivalent to grouping by the encoded key, which
	// keeps the final key-sorted output identical to the generic path; it is
	// the workload's common case (Q1-Q6 all group on one date or int column).
	// NULL and string keys (and multi-column groupings) take the generic
	// encoded-key path; both paths share the groups map.
	fast   map[uint64]*aggGroup
	fastOK bool
	keyBuf []byte
}

func newHashAggBuilder(groupBy []int, aggs []AggSpec) *hashAggBuilder {
	b := &hashAggBuilder{
		groupBy: groupBy,
		aggs:    aggs,
		groups:  make(map[string]*aggGroup),
		fastOK:  len(groupBy) == 1,
	}
	if b.fastOK {
		b.fast = make(map[uint64]*aggGroup)
	}
	return b
}

// consumeBatch folds one batch into the hash table.
func (hb *hashAggBuilder) consumeBatch(b *Batch) error {
	argVecs, err := aggArgVectors(hb.aggs, b)
	if err != nil {
		return err
	}
	n := b.NumRows()
	keyVals := make(Row, len(hb.groupBy))
	// lookupSlow is the generic encoded-key group lookup; keyVals must
	// already hold the group key. The numeric single-column fast path
	// stays inline in the loops below.
	lookupSlow := func() *aggGroup {
		hb.keyBuf = value.EncodeKey(hb.keyBuf[:0], keyVals)
		grp, ok := hb.groups[string(hb.keyBuf)]
		if !ok {
			grp = newAggGroup(append(Row(nil), keyVals...), len(hb.aggs))
			hb.groups[string(hb.keyBuf)] = grp
		}
		return grp
	}
	lookupFast := func(v value.Value) *aggGroup {
		bits := value.NumericSortKey(v)
		grp := hb.fast[bits]
		if grp == nil {
			grp = newAggGroup(Row{v}, len(hb.aggs))
			hb.fast[bits] = grp
			hb.groups[string(value.EncodeKey(nil, grp.keys))] = grp
		}
		return grp
	}
	seg := newSegmentIter(b, hb.groupBy, argVecs)
	if seg.flat {
		// All-flat batch: the plain per-row loop over raw slices, with
		// the numeric fast path fully inline (this is the executor's
		// hottest loop). Only the columns the loop actually reads are
		// flattened — untouched compressed columns stay compressed.
		groupFlats := make([][]value.Value, len(hb.groupBy))
		for k, g := range hb.groupBy {
			groupFlats[k] = b.Cols[g].Flat()
		}
		argFlats := flatColumns(argVecs)
		fastOK, fast := hb.fastOK, hb.fast
		for i := 0; i < n; i++ {
			p := b.PhysIdx(i)
			var grp *aggGroup
			if fastOK {
				if v := groupFlats[0][p]; v.Kind != value.KindNull && v.Kind != value.KindString {
					bits := value.NumericSortKey(v)
					grp = fast[bits]
					if grp == nil {
						grp = newAggGroup(Row{v}, len(hb.aggs))
						fast[bits] = grp
						hb.groups[string(value.EncodeKey(nil, grp.keys))] = grp
					}
				}
			}
			if grp == nil {
				for k := range hb.groupBy {
					keyVals[k] = groupFlats[k][p]
				}
				grp = lookupSlow()
			}
			for j, a := range hb.aggs {
				var v value.Value
				if a.Kind != AggCountStar {
					v = argFlats[j][p]
				}
				grp.states[j].add(v, a.Kind)
			}
		}
		return nil
	}
	// Compressed batch: walk maximal constant segments — a whole
	// batch for Const vectors, a clipped run for RLE — so
	// COUNT/SUM over a run collapse to a single addN.
	for i := 0; i < n; {
		p, reps := seg.next(i)
		var grp *aggGroup
		if hb.fastOK {
			if v := b.Cols[hb.groupBy[0]].Get(p); v.Kind != value.KindNull && v.Kind != value.KindString {
				grp = lookupFast(v)
			}
		}
		if grp == nil {
			for k, g := range hb.groupBy {
				keyVals[k] = b.Cols[g].Get(p)
			}
			grp = lookupSlow()
		}
		for j, a := range hb.aggs {
			var v value.Value
			if a.Kind != AggCountStar {
				v = argVecs[j].Get(p)
			}
			grp.states[j].addN(v, int64(reps), a.Kind)
		}
		i += reps
	}
	return nil
}

// consumeRow folds one row into the hash table (the row-at-a-time build).
func (hb *hashAggBuilder) consumeRow(row Row) error {
	keyVals := make(Row, len(hb.groupBy))
	for i, g := range hb.groupBy {
		keyVals[i] = row[g]
	}
	key := string(value.EncodeKey(nil, keyVals))
	grp, ok := hb.groups[key]
	if !ok {
		grp = newAggGroup(keyVals, len(hb.aggs))
		hb.groups[key] = grp
	}
	return accumulate(grp.states, hb.aggs, row)
}

// mergeFrom folds another builder's partial groups into hb — the
// partial→final combine of parallel aggregation. The other builder must have
// been built over the same groupBy/aggs and is consumed by the call. Per-key
// state merges are independent, so only the relative order of mergeFrom
// calls matters for float-sum rounding; ParallelHashAggregate merges morsel
// partials in morsel order to keep results deterministic.
func (hb *hashAggBuilder) mergeFrom(o *hashAggBuilder) {
	// The numeric fast map is not maintained across merges; disable it so a
	// later consumeBatch cannot resurrect a stale entry and shadow a merged
	// group.
	hb.fastOK = false
	hb.fast = nil
	for key, og := range o.groups {
		grp, ok := hb.groups[key]
		if !ok {
			hb.groups[key] = og
			continue
		}
		for i := range grp.states {
			grp.states[i].merge(og.states[i], hb.aggs[i].Kind)
		}
	}
}

// finish renders the accumulated groups as result rows sorted by encoded
// group key. A global aggregate (no GROUP BY) over empty input yields its
// single row here.
func (hb *hashAggBuilder) finish() []Row {
	if len(hb.groupBy) == 0 && len(hb.groups) == 0 {
		hb.groups[""] = newAggGroup(nil, len(hb.aggs))
	}
	keys := make([]string, 0, len(hb.groups))
	for k := range hb.groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Row, 0, len(keys))
	for _, k := range keys {
		grp := hb.groups[k]
		out = append(out, finishGroup(grp.keys, grp.states, hb.aggs))
	}
	return out
}

// build drains the input (batch-wise or row-wise) into the hash table and
// sorts the finished groups by encoded key, checking the applied context once
// per batch of drained input.
func (h *HashAggregate) build(batchWise bool) error {
	hb := newHashAggBuilder(h.GroupBy, h.Aggs)
	if batchWise {
		for {
			if err := ctxErr(h.ctx); err != nil {
				return err
			}
			b, ok, err := h.binput.NextBatch()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			if err := hb.consumeBatch(b); err != nil {
				return err
			}
		}
	} else {
		for n := 0; ; n++ {
			if n%DefaultBatchSize == 0 {
				if err := ctxErr(h.ctx); err != nil {
					return err
				}
			}
			row, ok, err := h.Input.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			if err := hb.consumeRow(row); err != nil {
				return err
			}
		}
	}
	h.results = hb.finish()
	h.pos = 0
	h.built = true
	return nil
}

// aggArgVectors evaluates aggregate arguments over a batch, leaving nil
// vectors for COUNT(*). Argument vectors keep whatever encoding the kernels
// preserved, so the segment walk can consume them run-wise.
func aggArgVectors(aggs []AggSpec, b *Batch) ([]*vector.Vector, error) {
	out := make([]*vector.Vector, len(aggs))
	physN := b.physRows()
	for j, a := range aggs {
		if a.Kind == AggCountStar || a.Arg == nil {
			continue
		}
		vec, err := expr.EvalVector(a.Arg, b.Cols, b.Sel, physN)
		if err != nil {
			return nil, err
		}
		out[j] = vec
	}
	return out, nil
}

// flatColumns returns each vector's per-row slice (nil entries stay nil).
// Callers use it on all-flat batches, where Flat() is zero-copy.
func flatColumns(vecs []*vector.Vector) [][]value.Value {
	out := make([][]value.Value, len(vecs))
	for i, v := range vecs {
		if v != nil {
			out[i] = v.Flat()
		}
	}
	return out
}

// segmentIter walks a batch's live rows in maximal constant segments: a
// segment covers physically contiguous live rows over which every tracked
// vector (group columns and aggregate arguments) is known to repeat one
// value — a whole batch for Const vectors, a clipped run for RLE or Dict.
// Aggregates fold a segment with a single addN, which is how COUNT or SUM
// over an RLE run becomes one multiply. When every tracked vector is Flat
// the walk degenerates to the plain per-row loop.
type segmentIter struct {
	b       *Batch
	tracked []*vector.Vector
	flat    bool
}

func newSegmentIter(b *Batch, groupBy []int, argVecs []*vector.Vector) *segmentIter {
	it := &segmentIter{b: b, flat: true}
	for _, g := range groupBy {
		it.tracked = append(it.tracked, b.Cols[g])
	}
	for _, v := range argVecs {
		if v != nil {
			it.tracked = append(it.tracked, v)
		}
	}
	for _, v := range it.tracked {
		if v.Encoding() != vector.Flat {
			it.flat = false
			break
		}
	}
	return it
}

// next returns the physical index of live row i and the number of live rows
// in the constant segment starting there (at least 1).
func (s *segmentIter) next(i int) (p, reps int) {
	p = s.b.PhysIdx(i)
	if s.flat {
		return p, 1
	}
	end := s.b.physRows()
	for _, v := range s.tracked {
		if e := v.RunEndAt(p); e < end {
			end = e
		}
	}
	sel := s.b.Sel
	if sel == nil {
		// No selection: live rows are contiguous by construction, so the
		// whole clipped run is one segment — COUNT/SUM over it is one addN.
		return p, end - p
	}
	// Under a selection, extend only across physically consecutive live rows
	// (filters over RLE columns produce contiguous index ranges, so this
	// still recovers whole runs).
	reps = 1
	for i+reps < len(sel) && p+reps < end && sel[i+reps] == p+reps {
		reps++
	}
	return p, reps
}

// foldGlobal folds one batch into the single group of a global (no GROUP BY)
// aggregate, column-at-a-time: each aggregate consumes its whole argument
// vector in a kind-specialized loop instead of paying a Vector.Get dispatch
// and an addN call per row per aggregate. Compressed vectors fold run-at-a-
// time through addN, which already collapses a run to one operation.
func foldGlobal(states []*aggState, aggs []AggSpec, b *Batch, argVecs []*vector.Vector) {
	n := b.NumRows()
	for j, a := range aggs {
		st := states[j]
		if a.Kind == AggCountStar {
			st.count += int64(n)
			continue
		}
		vec := argVecs[j]
		if vec.Encoding() == vector.Flat {
			st.foldFlat(vec.Flat(), b.Sel, a.Kind)
			continue
		}
		end := b.physRows()
		if sel := b.Sel; sel != nil {
			// A run's value is constant over [p, RunEndAt(p)), so every
			// selected row inside it folds as one (value, count) pair.
			for i := 0; i < len(sel); {
				p := sel[i]
				e := vec.RunEndAt(p)
				reps := 1
				for i+reps < len(sel) && sel[i+reps] < e {
					reps++
				}
				st.addN(vec.Get(p), int64(reps), a.Kind)
				i += reps
			}
			continue
		}
		for p := 0; p < end; {
			e := vec.RunEndAt(p)
			st.addN(vec.Get(p), int64(e-p), a.Kind)
			p = e
		}
	}
}

// foldFlat folds a flat argument column into the state with the per-kind loop
// bodies of addN inlined — the global aggregate's hottest path. Each body
// reproduces addN's semantics exactly (NULL skip, count/seen updates, the
// numeric/string comparison rules of value.Compare for same-kind pairs).
func (s *aggState) foldFlat(vals []value.Value, sel []int, kind AggKind) {
	switch kind {
	case AggSum, AggAvg:
		count, sumF, sumI, intOnly, seen := s.count, s.sum, s.sumInt, s.intOnly, s.seen
		fold := func(v *value.Value) {
			switch v.Kind {
			case value.KindNull:
				return
			case value.KindFloat:
				intOnly = false
				sumF += v.F
				sumI += int64(v.F)
			case value.KindInt, value.KindDate, value.KindBool:
				sumF += float64(v.I)
				sumI += v.I
			default:
				// Strings fold as zero, matching Value.Float/Int.
			}
			count++
			seen = true
		}
		if sel == nil {
			for i := range vals {
				fold(&vals[i])
			}
		} else {
			for _, p := range sel {
				fold(&vals[p])
			}
		}
		s.count, s.sum, s.sumInt, s.intOnly, s.seen = count, sumF, sumI, intOnly, seen
	case AggMin:
		count, cur, seen := s.count, s.min, s.seen
		fold := func(v value.Value) {
			if v.Kind == value.KindNull {
				return
			}
			count++
			seen = true
			if cur.Kind == value.KindNull {
				cur = v
				return
			}
			if v.Kind == cur.Kind {
				switch v.Kind {
				case value.KindInt, value.KindDate, value.KindBool:
					if v.I < cur.I {
						cur = v
					}
					return
				case value.KindFloat:
					if v.F < cur.F {
						cur = v
					}
					return
				case value.KindString:
					if v.S < cur.S {
						cur = v
					}
					return
				}
			}
			if value.Compare(v, cur) < 0 {
				cur = v
			}
		}
		if sel == nil {
			for i := range vals {
				fold(vals[i])
			}
		} else {
			for _, p := range sel {
				fold(vals[p])
			}
		}
		s.count, s.min, s.seen = count, cur, seen
	case AggMax:
		count, cur, seen := s.count, s.max, s.seen
		fold := func(v value.Value) {
			if v.Kind == value.KindNull {
				return
			}
			count++
			seen = true
			if cur.Kind == value.KindNull {
				cur = v
				return
			}
			if v.Kind == cur.Kind {
				switch v.Kind {
				case value.KindInt, value.KindDate, value.KindBool:
					if v.I > cur.I {
						cur = v
					}
					return
				case value.KindFloat:
					if v.F > cur.F {
						cur = v
					}
					return
				case value.KindString:
					if v.S > cur.S {
						cur = v
					}
					return
				}
			}
			if value.Compare(v, cur) > 0 {
				cur = v
			}
		}
		if sel == nil {
			for i := range vals {
				fold(vals[i])
			}
		} else {
			for _, p := range sel {
				fold(vals[p])
			}
		}
		s.count, s.max, s.seen = count, cur, seen
	default: // AggCount: count the non-NULLs
		count, seen := s.count, s.seen
		if sel == nil {
			for i := range vals {
				if vals[i].Kind != value.KindNull {
					count++
					seen = true
				}
			}
		} else {
			for _, p := range sel {
				if vals[p].Kind != value.KindNull {
					count++
					seen = true
				}
			}
		}
		s.count, s.seen = count, seen
	}
}

func accumulate(states []*aggState, aggs []AggSpec, row Row) error {
	for i, a := range aggs {
		var v value.Value
		if a.Kind != AggCountStar {
			var err error
			v, err = a.Arg.Eval(row)
			if err != nil {
				return err
			}
		}
		states[i].add(v, a.Kind)
	}
	return nil
}

func finishGroup(keys Row, states []*aggState, aggs []AggSpec) Row {
	out := make(Row, 0, len(keys)+len(aggs))
	out = append(out, keys...)
	for i, a := range aggs {
		out = append(out, states[i].result(a.Kind))
	}
	return out
}

// Next implements Operator.
func (h *HashAggregate) Next() (Row, bool, error) {
	if !h.built {
		if err := h.build(false); err != nil {
			return nil, false, err
		}
	}
	if h.pos >= len(h.results) {
		return nil, false, nil
	}
	row := h.results[h.pos]
	h.pos++
	return row, true, nil
}

// NextBatch implements BatchOperator.
func (h *HashAggregate) NextBatch() (*Batch, bool, error) {
	if h.binput == nil {
		return nil, false, errNotOpen("HashAggregate")
	}
	if !h.built {
		if err := h.build(true); err != nil {
			return nil, false, err
		}
	}
	if h.pos >= len(h.results) {
		return nil, false, nil
	}
	return batchFromRows(h.results, &h.pos, len(h.schema)), true, nil
}

// Close implements Operator.
func (h *HashAggregate) Close() error {
	h.results = nil
	h.built = false
	return h.Input.Close()
}

// StreamAggregate groups an input that is already ordered (clustered) on the
// group-by columns, emitting each group as soon as it ends. It never
// materializes more than one group, which is how the paper's "stream-based
// operator" after an intermediate sort behaves.
type StreamAggregate struct {
	Input   Operator
	GroupBy []int
	Aggs    []AggSpec

	schema  []ColumnInfo
	binput  BatchOperator
	curKeys Row
	states  []*aggState
	started bool
	done    bool
	pending Row
}

// NewStreamAggregate builds a streaming grouping operator. The caller must
// guarantee the input is grouped on the group-by columns (equal keys adjacent).
func NewStreamAggregate(input Operator, groupBy []int, aggs []AggSpec) *StreamAggregate {
	return &StreamAggregate{Input: input, GroupBy: groupBy, Aggs: aggs, schema: aggSchema(input, groupBy, aggs)}
}

// Schema implements Operator.
func (s *StreamAggregate) Schema() []ColumnInfo { return s.schema }

// Open implements Operator.
func (s *StreamAggregate) Open() error {
	s.curKeys, s.states, s.pending = nil, nil, nil
	s.started, s.done = false, false
	s.binput = AsBatchOperator(s.Input)
	return s.Input.Open()
}

func (s *StreamAggregate) newStates() []*aggState {
	states := make([]*aggState, len(s.Aggs))
	for i := range states {
		states[i] = newAggState()
	}
	return states
}

// Next implements Operator.
func (s *StreamAggregate) Next() (Row, bool, error) {
	if s.done {
		return nil, false, nil
	}
	for {
		row, ok, err := s.Input.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			s.done = true
			if !s.started {
				if len(s.GroupBy) == 0 {
					// Global aggregate over empty input yields one row.
					return finishGroup(nil, s.newStates(), s.Aggs), true, nil
				}
				return nil, false, nil
			}
			return finishGroup(s.curKeys, s.states, s.Aggs), true, nil
		}
		keyVals := make(Row, len(s.GroupBy))
		for i, g := range s.GroupBy {
			keyVals[i] = row[g]
		}
		if !s.started {
			s.started = true
			s.curKeys = keyVals
			s.states = s.newStates()
		} else if !rowsEqual(keyVals, s.curKeys) {
			result := finishGroup(s.curKeys, s.states, s.Aggs)
			s.curKeys = keyVals
			s.states = s.newStates()
			if err := accumulate(s.states, s.Aggs, row); err != nil {
				return nil, false, err
			}
			return result, true, nil
		}
		if err := accumulate(s.states, s.Aggs, row); err != nil {
			return nil, false, err
		}
	}
}

// NextBatch implements BatchOperator. It consumes whole input batches,
// evaluating aggregate arguments vector-at-a-time, and emits one batch of
// finished groups per input batch that closes at least one group.
func (s *StreamAggregate) NextBatch() (*Batch, bool, error) {
	if s.binput == nil {
		return nil, false, errNotOpen("StreamAggregate")
	}
	if s.done {
		return nil, false, nil
	}
	out := NewBatch(len(s.schema), DefaultBatchSize)
	for {
		b, ok, err := s.binput.NextBatch()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			s.done = true
			switch {
			case s.started:
				out.AppendRow(finishGroup(s.curKeys, s.states, s.Aggs))
			case len(s.GroupBy) == 0:
				// Global aggregate over empty input yields one row.
				out.AppendRow(finishGroup(nil, s.newStates(), s.Aggs))
			}
			if out.physRows() == 0 {
				return nil, false, nil
			}
			return out, true, nil
		}
		argVecs, err := aggArgVectors(s.Aggs, b)
		if err != nil {
			return nil, false, err
		}
		if len(s.GroupBy) == 0 {
			// Global aggregate: one group for the whole input, so the
			// per-segment key machinery is pure overhead — fold each
			// argument column in one pass.
			if !s.started {
				s.started = true
				s.curKeys = nil
				s.states = s.newStates()
			}
			foldGlobal(s.states, s.Aggs, b, argVecs)
			continue
		}
		seg := newSegmentIter(b, s.GroupBy, argVecs)
		n := b.NumRows()
		for i := 0; i < n; {
			// The group key is constant across a segment by construction, so
			// the key comparison runs once per segment and the aggregates
			// consume the segment as one (value, count) pair.
			p, reps := seg.next(i)
			keyVals := make(Row, len(s.GroupBy))
			for k, g := range s.GroupBy {
				keyVals[k] = b.Cols[g].Get(p)
			}
			if !s.started {
				s.started = true
				s.curKeys = keyVals
				s.states = s.newStates()
			} else if !rowsEqual(keyVals, s.curKeys) {
				out.AppendRow(finishGroup(s.curKeys, s.states, s.Aggs))
				s.curKeys = keyVals
				s.states = s.newStates()
			}
			for j, a := range s.Aggs {
				var v value.Value
				if a.Kind != AggCountStar {
					v = argVecs[j].Get(p)
				}
				s.states[j].addN(v, int64(reps), a.Kind)
			}
			i += reps
		}
		if out.physRows() > 0 {
			return out, true, nil
		}
	}
}

// streamAggRun accumulates the ordered groups of one contiguous range of a
// grouped input (a morsel) for streaming aggregation: keys and states in
// first-seen order, no group dropped. Because morsels are consecutive ranges
// of the grouped input, two adjacent runs can share at most the group at
// their seam — appendRun merges it — so concatenating the runs in morsel
// order reproduces the serial StreamAggregate's groups exactly.
type streamAggRun struct {
	groupBy []int
	aggs    []AggSpec
	keys    []Row
	states  [][]*aggState
}

func newStreamAggRun(groupBy []int, aggs []AggSpec) *streamAggRun {
	return &streamAggRun{groupBy: groupBy, aggs: aggs}
}

// consumeBatch folds one batch (grouped on the group-by columns, like the
// whole input) into the run.
func (r *streamAggRun) consumeBatch(b *Batch) error {
	argVecs, err := aggArgVectors(r.aggs, b)
	if err != nil {
		return err
	}
	seg := newSegmentIter(b, r.groupBy, argVecs)
	n := b.NumRows()
	for i := 0; i < n; {
		// The group key is constant across a segment by construction, so the
		// key comparison runs once per segment and the aggregates consume the
		// segment as one (value, count) pair.
		p, reps := seg.next(i)
		keyVals := make(Row, len(r.groupBy))
		for k, g := range r.groupBy {
			keyVals[k] = b.Cols[g].Get(p)
		}
		last := len(r.keys) - 1
		if last < 0 || !rowsEqual(keyVals, r.keys[last]) {
			states := make([]*aggState, len(r.aggs))
			for j := range states {
				states[j] = newAggState()
			}
			r.keys = append(r.keys, keyVals)
			r.states = append(r.states, states)
			last++
		}
		for j, a := range r.aggs {
			var v value.Value
			if a.Kind != AggCountStar {
				v = argVecs[j].Get(p)
			}
			r.states[last][j].addN(v, int64(reps), a.Kind)
		}
		i += reps
	}
	return nil
}

// appendRun concatenates the next morsel's run onto r, merging the seam
// group when the two runs meet inside one group.
func (r *streamAggRun) appendRun(o *streamAggRun) {
	start := 0
	if last := len(r.keys) - 1; last >= 0 && len(o.keys) > 0 && rowsEqual(r.keys[last], o.keys[0]) {
		for j := range r.states[last] {
			r.states[last][j].merge(o.states[0][j], r.aggs[j].Kind)
		}
		start = 1
	}
	r.keys = append(r.keys, o.keys[start:]...)
	r.states = append(r.states, o.states[start:]...)
}

// finish renders the run's groups as rows in input order. A global aggregate
// (no GROUP BY) over empty input yields its single row here.
func (r *streamAggRun) finish() []Row {
	if len(r.keys) == 0 && len(r.groupBy) == 0 {
		states := make([]*aggState, len(r.aggs))
		for j := range states {
			states[j] = newAggState()
		}
		return []Row{finishGroup(nil, states, r.aggs)}
	}
	out := make([]Row, len(r.keys))
	for i := range r.keys {
		out[i] = finishGroup(r.keys[i], r.states[i], r.aggs)
	}
	return out
}

func rowsEqual(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if value.Compare(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

// Close implements Operator.
func (s *StreamAggregate) Close() error { return s.Input.Close() }
