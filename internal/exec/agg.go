package exec

import (
	"fmt"
	"sort"

	"oldelephant/internal/expr"
	"oldelephant/internal/value"
	"oldelephant/internal/vector"
)

// AggKind enumerates the supported aggregate functions.
type AggKind int

// Aggregate functions.
const (
	AggCountStar AggKind = iota
	AggCount
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String returns the SQL name of the aggregate.
func (k AggKind) String() string {
	switch k {
	case AggCountStar, AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	default:
		return fmt.Sprintf("AggKind(%d)", int(k))
	}
}

// AggSpec is one aggregate in the output of a grouping operator.
type AggSpec struct {
	Kind AggKind
	Arg  expr.Expr // nil for COUNT(*)
	Name string    // output column label
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	count   int64
	sum     float64
	sumInt  int64
	intOnly bool
	min     value.Value
	max     value.Value
	seen    bool
}

func newAggState() *aggState {
	return &aggState{intOnly: true, min: value.Null(), max: value.Null()}
}

func (s *aggState) add(v value.Value, kind AggKind) { s.addN(v, 1, kind) }

// addN folds reps occurrences of v into the state at once: COUNT and SUM
// over a run of equal values collapse to one addition and one multiply,
// MIN/MAX to a single comparison. It is how the vectorized aggregates
// consume RLE runs as (value, count) pairs. Integer sums stay exact; float
// sums fold the run as v*reps, which can round differently from repeated
// addition — SQL leaves float aggregation order unspecified, and consumers
// comparing against a row-at-a-time sum must allow a tolerance.
func (s *aggState) addN(v value.Value, reps int64, kind AggKind) {
	if kind == AggCountStar {
		s.count += reps
		return
	}
	if v.IsNull() {
		return
	}
	s.count += reps
	s.seen = true
	switch kind {
	case AggSum, AggAvg:
		if v.Kind == value.KindFloat {
			s.intOnly = false
		}
		s.sum += v.Float() * float64(reps)
		s.sumInt += v.Int() * reps
	case AggMin:
		if s.min.IsNull() || value.Compare(v, s.min) < 0 {
			s.min = v
		}
	case AggMax:
		if s.max.IsNull() || value.Compare(v, s.max) > 0 {
			s.max = v
		}
	}
}

func (s *aggState) result(kind AggKind) value.Value {
	switch kind {
	case AggCountStar, AggCount:
		return value.NewInt(s.count)
	case AggSum:
		if !s.seen {
			return value.Null()
		}
		if s.intOnly {
			return value.NewInt(s.sumInt)
		}
		return value.NewFloat(s.sum)
	case AggAvg:
		if s.count == 0 {
			return value.Null()
		}
		return value.NewFloat(s.sum / float64(s.count))
	case AggMin:
		return s.min
	case AggMax:
		return s.max
	default:
		return value.Null()
	}
}

// aggSchema builds the output schema of a grouping operator: the group-by
// columns (in order) followed by one column per aggregate.
func aggSchema(input Operator, groupBy []int, aggs []AggSpec) []ColumnInfo {
	in := input.Schema()
	out := make([]ColumnInfo, 0, len(groupBy)+len(aggs))
	for _, g := range groupBy {
		out = append(out, in[g])
	}
	for _, a := range aggs {
		name := a.Name
		if name == "" {
			name = a.Kind.String()
		}
		kind := value.KindInt
		switch a.Kind {
		case AggAvg:
			kind = value.KindFloat
		case AggSum, AggMin, AggMax:
			if col, ok := a.Arg.(*expr.Column); ok && col.Index < len(in) {
				kind = in[col.Index].Kind
			} else {
				kind = value.KindFloat
			}
		}
		out = append(out, ColumnInfo{Name: name, Kind: kind})
	}
	return out
}

// HashAggregate groups its input with a hash table; input order is
// irrelevant and output order is the group-key order (sorted for
// determinism). The build is deferred to the first Next/NextBatch call so the
// input can be drained through whichever pull protocol the parent is using.
type HashAggregate struct {
	Input   Operator
	GroupBy []int
	Aggs    []AggSpec

	schema  []ColumnInfo
	binput  BatchOperator
	results []Row
	built   bool
	pos     int
}

// NewHashAggregate builds a hash-based grouping operator.
func NewHashAggregate(input Operator, groupBy []int, aggs []AggSpec) *HashAggregate {
	return &HashAggregate{Input: input, GroupBy: groupBy, Aggs: aggs, schema: aggSchema(input, groupBy, aggs)}
}

// Schema implements Operator.
func (h *HashAggregate) Schema() []ColumnInfo { return h.schema }

// Open implements Operator.
func (h *HashAggregate) Open() error {
	h.results, h.built, h.pos = nil, false, 0
	h.binput = AsBatchOperator(h.Input)
	return h.Input.Open()
}

// aggGroup is one hash-table entry during the build.
type aggGroup struct {
	keys   Row
	states []*aggState
}

func newAggGroup(keys Row, naggs int) *aggGroup {
	grp := &aggGroup{keys: keys, states: make([]*aggState, naggs)}
	for i := range grp.states {
		grp.states[i] = newAggState()
	}
	return grp
}

// build drains the input (batch-wise or row-wise) into the hash table and
// sorts the finished groups by encoded key.
func (h *HashAggregate) build(batchWise bool) error {
	groups := make(map[string]*aggGroup)
	var keyBuf []byte
	if batchWise {
		// Single-column group-by keyed on a numeric column is the workload's
		// common case (Q1-Q6 all group on one date or int column). EncodeKey
		// maps every numeric kind through NumericSortKey, so grouping by that
		// word in a uint64-keyed map is exactly equivalent to grouping by the
		// encoded key — without the per-row encode and string allocation.
		// NULL and string keys (and multi-column groupings) take the generic
		// encoded-key path; both paths share the groups map, which keeps the
		// final key-sorted output order identical to the row-at-a-time build.
		fastOK := len(h.GroupBy) == 1
		var fast map[uint64]*aggGroup
		if fastOK {
			fast = make(map[uint64]*aggGroup)
		}
		for {
			b, ok, err := h.binput.NextBatch()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			argVecs, err := aggArgVectors(h.Aggs, b)
			if err != nil {
				return err
			}
			n := b.NumRows()
			keyVals := make(Row, len(h.GroupBy))
			// lookupSlow is the generic encoded-key group lookup; keyVals must
			// already hold the group key. The numeric single-column fast path
			// stays inline in the loops below.
			lookupSlow := func() *aggGroup {
				keyBuf = value.EncodeKey(keyBuf[:0], keyVals)
				grp, ok := groups[string(keyBuf)]
				if !ok {
					grp = newAggGroup(append(Row(nil), keyVals...), len(h.Aggs))
					groups[string(keyBuf)] = grp
				}
				return grp
			}
			lookupFast := func(v value.Value) *aggGroup {
				bits := value.NumericSortKey(v)
				grp := fast[bits]
				if grp == nil {
					grp = newAggGroup(Row{v}, len(h.Aggs))
					fast[bits] = grp
					groups[string(value.EncodeKey(nil, grp.keys))] = grp
				}
				return grp
			}
			seg := newSegmentIter(b, h.GroupBy, argVecs)
			if seg.flat {
				// All-flat batch: the plain per-row loop over raw slices, with
				// the numeric fast path fully inline (this is the executor's
				// hottest loop). Only the columns the loop actually reads are
				// flattened — untouched compressed columns stay compressed.
				groupFlats := make([][]value.Value, len(h.GroupBy))
				for k, g := range h.GroupBy {
					groupFlats[k] = b.Cols[g].Flat()
				}
				argFlats := flatColumns(argVecs)
				for i := 0; i < n; i++ {
					p := b.PhysIdx(i)
					var grp *aggGroup
					if fastOK {
						if v := groupFlats[0][p]; v.Kind != value.KindNull && v.Kind != value.KindString {
							bits := value.NumericSortKey(v)
							grp = fast[bits]
							if grp == nil {
								grp = newAggGroup(Row{v}, len(h.Aggs))
								fast[bits] = grp
								groups[string(value.EncodeKey(nil, grp.keys))] = grp
							}
						}
					}
					if grp == nil {
						for k := range h.GroupBy {
							keyVals[k] = groupFlats[k][p]
						}
						grp = lookupSlow()
					}
					for j, a := range h.Aggs {
						var v value.Value
						if a.Kind != AggCountStar {
							v = argFlats[j][p]
						}
						grp.states[j].add(v, a.Kind)
					}
				}
			} else {
				// Compressed batch: walk maximal constant segments — a whole
				// batch for Const vectors, a clipped run for RLE — so
				// COUNT/SUM over a run collapse to a single addN.
				for i := 0; i < n; {
					p, reps := seg.next(i)
					var grp *aggGroup
					if fastOK {
						if v := b.Cols[h.GroupBy[0]].Get(p); v.Kind != value.KindNull && v.Kind != value.KindString {
							grp = lookupFast(v)
						}
					}
					if grp == nil {
						for k, g := range h.GroupBy {
							keyVals[k] = b.Cols[g].Get(p)
						}
						grp = lookupSlow()
					}
					for j, a := range h.Aggs {
						var v value.Value
						if a.Kind != AggCountStar {
							v = argVecs[j].Get(p)
						}
						grp.states[j].addN(v, int64(reps), a.Kind)
					}
					i += reps
				}
			}
		}
	} else {
		for {
			row, ok, err := h.Input.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			keyVals := make(Row, len(h.GroupBy))
			for i, g := range h.GroupBy {
				keyVals[i] = row[g]
			}
			key := string(value.EncodeKey(nil, keyVals))
			grp, ok := groups[key]
			if !ok {
				grp = newAggGroup(keyVals, len(h.Aggs))
				groups[key] = grp
			}
			if err := accumulate(grp.states, h.Aggs, row); err != nil {
				return err
			}
		}
	}
	// Aggregation without GROUP BY always produces one row, even on empty input.
	if len(h.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = newAggGroup(nil, len(h.Aggs))
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h.results = make([]Row, 0, len(keys))
	for _, k := range keys {
		grp := groups[k]
		h.results = append(h.results, finishGroup(grp.keys, grp.states, h.Aggs))
	}
	h.pos = 0
	h.built = true
	return nil
}

// aggArgVectors evaluates aggregate arguments over a batch, leaving nil
// vectors for COUNT(*). Argument vectors keep whatever encoding the kernels
// preserved, so the segment walk can consume them run-wise.
func aggArgVectors(aggs []AggSpec, b *Batch) ([]*vector.Vector, error) {
	out := make([]*vector.Vector, len(aggs))
	physN := b.physRows()
	for j, a := range aggs {
		if a.Kind == AggCountStar || a.Arg == nil {
			continue
		}
		vec, err := expr.EvalVector(a.Arg, b.Cols, b.Sel, physN)
		if err != nil {
			return nil, err
		}
		out[j] = vec
	}
	return out, nil
}

// flatColumns returns each vector's per-row slice (nil entries stay nil).
// Callers use it on all-flat batches, where Flat() is zero-copy.
func flatColumns(vecs []*vector.Vector) [][]value.Value {
	out := make([][]value.Value, len(vecs))
	for i, v := range vecs {
		if v != nil {
			out[i] = v.Flat()
		}
	}
	return out
}

// segmentIter walks a batch's live rows in maximal constant segments: a
// segment covers physically contiguous live rows over which every tracked
// vector (group columns and aggregate arguments) is known to repeat one
// value — a whole batch for Const vectors, a clipped run for RLE or Dict.
// Aggregates fold a segment with a single addN, which is how COUNT or SUM
// over an RLE run becomes one multiply. When every tracked vector is Flat
// the walk degenerates to the plain per-row loop.
type segmentIter struct {
	b       *Batch
	tracked []*vector.Vector
	flat    bool
}

func newSegmentIter(b *Batch, groupBy []int, argVecs []*vector.Vector) *segmentIter {
	it := &segmentIter{b: b, flat: true}
	for _, g := range groupBy {
		it.tracked = append(it.tracked, b.Cols[g])
	}
	for _, v := range argVecs {
		if v != nil {
			it.tracked = append(it.tracked, v)
		}
	}
	for _, v := range it.tracked {
		if v.Encoding() != vector.Flat {
			it.flat = false
			break
		}
	}
	return it
}

// next returns the physical index of live row i and the number of live rows
// in the constant segment starting there (at least 1).
func (s *segmentIter) next(i int) (p, reps int) {
	p = s.b.PhysIdx(i)
	if s.flat {
		return p, 1
	}
	end := s.b.physRows()
	for _, v := range s.tracked {
		if e := v.RunEndAt(p); e < end {
			end = e
		}
	}
	sel := s.b.Sel
	if sel == nil {
		// No selection: live rows are contiguous by construction, so the
		// whole clipped run is one segment — COUNT/SUM over it is one addN.
		return p, end - p
	}
	// Under a selection, extend only across physically consecutive live rows
	// (filters over RLE columns produce contiguous index ranges, so this
	// still recovers whole runs).
	reps = 1
	for i+reps < len(sel) && p+reps < end && sel[i+reps] == p+reps {
		reps++
	}
	return p, reps
}

func accumulate(states []*aggState, aggs []AggSpec, row Row) error {
	for i, a := range aggs {
		var v value.Value
		if a.Kind != AggCountStar {
			var err error
			v, err = a.Arg.Eval(row)
			if err != nil {
				return err
			}
		}
		states[i].add(v, a.Kind)
	}
	return nil
}

func finishGroup(keys Row, states []*aggState, aggs []AggSpec) Row {
	out := make(Row, 0, len(keys)+len(aggs))
	out = append(out, keys...)
	for i, a := range aggs {
		out = append(out, states[i].result(a.Kind))
	}
	return out
}

// Next implements Operator.
func (h *HashAggregate) Next() (Row, bool, error) {
	if !h.built {
		if err := h.build(false); err != nil {
			return nil, false, err
		}
	}
	if h.pos >= len(h.results) {
		return nil, false, nil
	}
	row := h.results[h.pos]
	h.pos++
	return row, true, nil
}

// NextBatch implements BatchOperator.
func (h *HashAggregate) NextBatch() (*Batch, bool, error) {
	if h.binput == nil {
		return nil, false, errNotOpen("HashAggregate")
	}
	if !h.built {
		if err := h.build(true); err != nil {
			return nil, false, err
		}
	}
	if h.pos >= len(h.results) {
		return nil, false, nil
	}
	return batchFromRows(h.results, &h.pos, len(h.schema)), true, nil
}

// Close implements Operator.
func (h *HashAggregate) Close() error {
	h.results = nil
	h.built = false
	return h.Input.Close()
}

// StreamAggregate groups an input that is already ordered (clustered) on the
// group-by columns, emitting each group as soon as it ends. It never
// materializes more than one group, which is how the paper's "stream-based
// operator" after an intermediate sort behaves.
type StreamAggregate struct {
	Input   Operator
	GroupBy []int
	Aggs    []AggSpec

	schema  []ColumnInfo
	binput  BatchOperator
	curKeys Row
	states  []*aggState
	started bool
	done    bool
	pending Row
}

// NewStreamAggregate builds a streaming grouping operator. The caller must
// guarantee the input is grouped on the group-by columns (equal keys adjacent).
func NewStreamAggregate(input Operator, groupBy []int, aggs []AggSpec) *StreamAggregate {
	return &StreamAggregate{Input: input, GroupBy: groupBy, Aggs: aggs, schema: aggSchema(input, groupBy, aggs)}
}

// Schema implements Operator.
func (s *StreamAggregate) Schema() []ColumnInfo { return s.schema }

// Open implements Operator.
func (s *StreamAggregate) Open() error {
	s.curKeys, s.states, s.pending = nil, nil, nil
	s.started, s.done = false, false
	s.binput = AsBatchOperator(s.Input)
	return s.Input.Open()
}

func (s *StreamAggregate) newStates() []*aggState {
	states := make([]*aggState, len(s.Aggs))
	for i := range states {
		states[i] = newAggState()
	}
	return states
}

// Next implements Operator.
func (s *StreamAggregate) Next() (Row, bool, error) {
	if s.done {
		return nil, false, nil
	}
	for {
		row, ok, err := s.Input.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			s.done = true
			if !s.started {
				if len(s.GroupBy) == 0 {
					// Global aggregate over empty input yields one row.
					return finishGroup(nil, s.newStates(), s.Aggs), true, nil
				}
				return nil, false, nil
			}
			return finishGroup(s.curKeys, s.states, s.Aggs), true, nil
		}
		keyVals := make(Row, len(s.GroupBy))
		for i, g := range s.GroupBy {
			keyVals[i] = row[g]
		}
		if !s.started {
			s.started = true
			s.curKeys = keyVals
			s.states = s.newStates()
		} else if !rowsEqual(keyVals, s.curKeys) {
			result := finishGroup(s.curKeys, s.states, s.Aggs)
			s.curKeys = keyVals
			s.states = s.newStates()
			if err := accumulate(s.states, s.Aggs, row); err != nil {
				return nil, false, err
			}
			return result, true, nil
		}
		if err := accumulate(s.states, s.Aggs, row); err != nil {
			return nil, false, err
		}
	}
}

// NextBatch implements BatchOperator. It consumes whole input batches,
// evaluating aggregate arguments vector-at-a-time, and emits one batch of
// finished groups per input batch that closes at least one group.
func (s *StreamAggregate) NextBatch() (*Batch, bool, error) {
	if s.binput == nil {
		return nil, false, errNotOpen("StreamAggregate")
	}
	if s.done {
		return nil, false, nil
	}
	out := NewBatch(len(s.schema), DefaultBatchSize)
	for {
		b, ok, err := s.binput.NextBatch()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			s.done = true
			switch {
			case s.started:
				out.AppendRow(finishGroup(s.curKeys, s.states, s.Aggs))
			case len(s.GroupBy) == 0:
				// Global aggregate over empty input yields one row.
				out.AppendRow(finishGroup(nil, s.newStates(), s.Aggs))
			}
			if out.physRows() == 0 {
				return nil, false, nil
			}
			return out, true, nil
		}
		argVecs, err := aggArgVectors(s.Aggs, b)
		if err != nil {
			return nil, false, err
		}
		seg := newSegmentIter(b, s.GroupBy, argVecs)
		n := b.NumRows()
		for i := 0; i < n; {
			// The group key is constant across a segment by construction, so
			// the key comparison runs once per segment and the aggregates
			// consume the segment as one (value, count) pair.
			p, reps := seg.next(i)
			keyVals := make(Row, len(s.GroupBy))
			for k, g := range s.GroupBy {
				keyVals[k] = b.Cols[g].Get(p)
			}
			if !s.started {
				s.started = true
				s.curKeys = keyVals
				s.states = s.newStates()
			} else if !rowsEqual(keyVals, s.curKeys) {
				out.AppendRow(finishGroup(s.curKeys, s.states, s.Aggs))
				s.curKeys = keyVals
				s.states = s.newStates()
			}
			for j, a := range s.Aggs {
				var v value.Value
				if a.Kind != AggCountStar {
					v = argVecs[j].Get(p)
				}
				s.states[j].addN(v, int64(reps), a.Kind)
			}
			i += reps
		}
		if out.physRows() > 0 {
			return out, true, nil
		}
	}
}

func rowsEqual(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if value.Compare(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

// Close implements Operator.
func (s *StreamAggregate) Close() error { return s.Input.Close() }
