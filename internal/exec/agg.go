package exec

import (
	"fmt"
	"sort"

	"oldelephant/internal/expr"
	"oldelephant/internal/value"
)

// AggKind enumerates the supported aggregate functions.
type AggKind int

// Aggregate functions.
const (
	AggCountStar AggKind = iota
	AggCount
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String returns the SQL name of the aggregate.
func (k AggKind) String() string {
	switch k {
	case AggCountStar, AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	default:
		return fmt.Sprintf("AggKind(%d)", int(k))
	}
}

// AggSpec is one aggregate in the output of a grouping operator.
type AggSpec struct {
	Kind AggKind
	Arg  expr.Expr // nil for COUNT(*)
	Name string    // output column label
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	count   int64
	sum     float64
	sumInt  int64
	intOnly bool
	min     value.Value
	max     value.Value
	seen    bool
}

func newAggState() *aggState {
	return &aggState{intOnly: true, min: value.Null(), max: value.Null()}
}

func (s *aggState) add(v value.Value, kind AggKind) {
	if kind == AggCountStar {
		s.count++
		return
	}
	if v.IsNull() {
		return
	}
	s.count++
	s.seen = true
	switch kind {
	case AggSum, AggAvg:
		if v.Kind == value.KindFloat {
			s.intOnly = false
		}
		s.sum += v.Float()
		s.sumInt += v.Int()
	case AggMin:
		if s.min.IsNull() || value.Compare(v, s.min) < 0 {
			s.min = v
		}
	case AggMax:
		if s.max.IsNull() || value.Compare(v, s.max) > 0 {
			s.max = v
		}
	}
}

func (s *aggState) result(kind AggKind) value.Value {
	switch kind {
	case AggCountStar, AggCount:
		return value.NewInt(s.count)
	case AggSum:
		if !s.seen {
			return value.Null()
		}
		if s.intOnly {
			return value.NewInt(s.sumInt)
		}
		return value.NewFloat(s.sum)
	case AggAvg:
		if s.count == 0 {
			return value.Null()
		}
		return value.NewFloat(s.sum / float64(s.count))
	case AggMin:
		return s.min
	case AggMax:
		return s.max
	default:
		return value.Null()
	}
}

// aggSchema builds the output schema of a grouping operator: the group-by
// columns (in order) followed by one column per aggregate.
func aggSchema(input Operator, groupBy []int, aggs []AggSpec) []ColumnInfo {
	in := input.Schema()
	out := make([]ColumnInfo, 0, len(groupBy)+len(aggs))
	for _, g := range groupBy {
		out = append(out, in[g])
	}
	for _, a := range aggs {
		name := a.Name
		if name == "" {
			name = a.Kind.String()
		}
		kind := value.KindInt
		switch a.Kind {
		case AggAvg:
			kind = value.KindFloat
		case AggSum, AggMin, AggMax:
			if col, ok := a.Arg.(*expr.Column); ok && col.Index < len(in) {
				kind = in[col.Index].Kind
			} else {
				kind = value.KindFloat
			}
		}
		out = append(out, ColumnInfo{Name: name, Kind: kind})
	}
	return out
}

// HashAggregate groups its input with a hash table; input order is
// irrelevant and output order is the group-key order (sorted for
// determinism).
type HashAggregate struct {
	Input   Operator
	GroupBy []int
	Aggs    []AggSpec

	schema  []ColumnInfo
	results []Row
	pos     int
}

// NewHashAggregate builds a hash-based grouping operator.
func NewHashAggregate(input Operator, groupBy []int, aggs []AggSpec) *HashAggregate {
	return &HashAggregate{Input: input, GroupBy: groupBy, Aggs: aggs, schema: aggSchema(input, groupBy, aggs)}
}

// Schema implements Operator.
func (h *HashAggregate) Schema() []ColumnInfo { return h.schema }

// Open implements Operator.
func (h *HashAggregate) Open() error {
	if err := h.Input.Open(); err != nil {
		return err
	}
	type group struct {
		keys   Row
		states []*aggState
	}
	groups := make(map[string]*group)
	for {
		row, ok, err := h.Input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		keyVals := make(Row, len(h.GroupBy))
		for i, g := range h.GroupBy {
			keyVals[i] = row[g]
		}
		key := string(value.EncodeKey(nil, keyVals))
		grp, ok := groups[key]
		if !ok {
			grp = &group{keys: keyVals, states: make([]*aggState, len(h.Aggs))}
			for i := range grp.states {
				grp.states[i] = newAggState()
			}
			groups[key] = grp
		}
		if err := accumulate(grp.states, h.Aggs, row); err != nil {
			return err
		}
	}
	// Aggregation without GROUP BY always produces one row, even on empty input.
	if len(h.GroupBy) == 0 && len(groups) == 0 {
		grp := &group{states: make([]*aggState, len(h.Aggs))}
		for i := range grp.states {
			grp.states[i] = newAggState()
		}
		groups[""] = grp
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h.results = make([]Row, 0, len(keys))
	for _, k := range keys {
		grp := groups[k]
		h.results = append(h.results, finishGroup(grp.keys, grp.states, h.Aggs))
	}
	h.pos = 0
	return nil
}

func accumulate(states []*aggState, aggs []AggSpec, row Row) error {
	for i, a := range aggs {
		var v value.Value
		if a.Kind != AggCountStar {
			var err error
			v, err = a.Arg.Eval(row)
			if err != nil {
				return err
			}
		}
		states[i].add(v, a.Kind)
	}
	return nil
}

func finishGroup(keys Row, states []*aggState, aggs []AggSpec) Row {
	out := make(Row, 0, len(keys)+len(aggs))
	out = append(out, keys...)
	for i, a := range aggs {
		out = append(out, states[i].result(a.Kind))
	}
	return out
}

// Next implements Operator.
func (h *HashAggregate) Next() (Row, bool, error) {
	if h.pos >= len(h.results) {
		return nil, false, nil
	}
	row := h.results[h.pos]
	h.pos++
	return row, true, nil
}

// Close implements Operator.
func (h *HashAggregate) Close() error {
	h.results = nil
	return h.Input.Close()
}

// StreamAggregate groups an input that is already ordered (clustered) on the
// group-by columns, emitting each group as soon as it ends. It never
// materializes more than one group, which is how the paper's "stream-based
// operator" after an intermediate sort behaves.
type StreamAggregate struct {
	Input   Operator
	GroupBy []int
	Aggs    []AggSpec

	schema  []ColumnInfo
	curKeys Row
	states  []*aggState
	started bool
	done    bool
	pending Row
}

// NewStreamAggregate builds a streaming grouping operator. The caller must
// guarantee the input is grouped on the group-by columns (equal keys adjacent).
func NewStreamAggregate(input Operator, groupBy []int, aggs []AggSpec) *StreamAggregate {
	return &StreamAggregate{Input: input, GroupBy: groupBy, Aggs: aggs, schema: aggSchema(input, groupBy, aggs)}
}

// Schema implements Operator.
func (s *StreamAggregate) Schema() []ColumnInfo { return s.schema }

// Open implements Operator.
func (s *StreamAggregate) Open() error {
	s.curKeys, s.states, s.pending = nil, nil, nil
	s.started, s.done = false, false
	return s.Input.Open()
}

func (s *StreamAggregate) newStates() []*aggState {
	states := make([]*aggState, len(s.Aggs))
	for i := range states {
		states[i] = newAggState()
	}
	return states
}

// Next implements Operator.
func (s *StreamAggregate) Next() (Row, bool, error) {
	if s.done {
		return nil, false, nil
	}
	for {
		row, ok, err := s.Input.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			s.done = true
			if !s.started {
				if len(s.GroupBy) == 0 {
					// Global aggregate over empty input yields one row.
					return finishGroup(nil, s.newStates(), s.Aggs), true, nil
				}
				return nil, false, nil
			}
			return finishGroup(s.curKeys, s.states, s.Aggs), true, nil
		}
		keyVals := make(Row, len(s.GroupBy))
		for i, g := range s.GroupBy {
			keyVals[i] = row[g]
		}
		if !s.started {
			s.started = true
			s.curKeys = keyVals
			s.states = s.newStates()
		} else if !rowsEqual(keyVals, s.curKeys) {
			result := finishGroup(s.curKeys, s.states, s.Aggs)
			s.curKeys = keyVals
			s.states = s.newStates()
			if err := accumulate(s.states, s.Aggs, row); err != nil {
				return nil, false, err
			}
			return result, true, nil
		}
		if err := accumulate(s.states, s.Aggs, row); err != nil {
			return nil, false, err
		}
	}
}

func rowsEqual(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if value.Compare(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

// Close implements Operator.
func (s *StreamAggregate) Close() error { return s.Input.Close() }
