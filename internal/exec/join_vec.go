// Vectorized hash join: the batch-at-a-time equi-join that retires the last
// row-at-a-time hot path. The build side is consumed as batches into a typed
// hash table (numeric keys hash as value.NumericSortKey words, no string
// encoding; NULL keys never match and are dropped up front), optionally
// morsel-parallel: workers claim build morsels through the shared atomic
// cursor, hash each morsel into a private partition, and the partitions merge
// in morsel order — so bucket lists hold build rows in exactly the serial
// drain order. The probe side then streams batch-at-a-time: compressed probe
// keys hash once per run or dictionary entry instead of once per row, matches
// buffer as (probe row, build row) pairs, and output batches materialize by
// gathering both sides column-wise — no per-row Row allocation, with the
// residual predicate applied through the vectorized kernels.
//
// Probe-side morsel pipelines share one build: clones created by
// plan.Parallelize hold the same joinBuildState, whose sync.Once-style latch
// lets whichever worker arrives first run the build while the rest wait.
// Matches emit per probe row in build insertion order, so a parallel plan's
// merged output is bit-identical to the serial join's.
package exec

import (
	"context"
	"fmt"
	"sync"

	"oldelephant/internal/expr"
	"oldelephant/internal/value"
	"oldelephant/internal/vector"
)

// joinTable is the built (right) side of the vectorized hash join: matchable
// build rows stored column-major plus typed-key buckets of row indices. A
// single numeric key uses the fast uint64 map; string and composite keys use
// the order-preserving encoded-key map. Rows whose key contains NULL are not
// stored at all — SQL equality can never select them. After the build
// finishes the table is immutable, so concurrent probe workers read it
// without locks (lookups take a caller-owned scratch buffer).
//
// Buckets are intrusive chains, not slices: the map value packs the bucket's
// (head, tail) row indices into one word and next[i] links same-key rows in
// insertion order. One word per key keeps the map compact (cache-resident far
// longer than 24-byte slice headers) and inserting costs no per-bucket
// allocation — the probe loop is a single map access plus a chain walk.
type joinTable struct {
	keys    []int
	cols    [][]value.Value
	fast    map[uint64]uint64
	generic map[string]uint64
	next    []int32
	fastOK  bool
	keyBuf  []byte // build-time scratch; never touched by lookups
}

// chainNone marks an empty bucket / end of chain.
const chainNone int32 = -1

func packChain(head, tail int32) uint64 {
	return uint64(uint32(head))<<32 | uint64(uint32(tail))
}

func chainHead(ht uint64) int32 { return int32(uint32(ht >> 32)) }
func chainTail(ht uint64) int32 { return int32(uint32(ht)) }

func newJoinTable(ncols int, keys []int) *joinTable {
	t := &joinTable{
		keys:    keys,
		cols:    make([][]value.Value, ncols),
		generic: make(map[string]uint64),
		fastOK:  len(keys) == 1,
	}
	if t.fastOK {
		t.fast = make(map[uint64]uint64)
	}
	return t
}

func (t *joinTable) numRows() int {
	if len(t.cols) == 0 {
		return 0
	}
	return len(t.cols[0])
}

// linkFast appends row idx to the fast bucket of key word w.
func (t *joinTable) linkFast(w uint64, idx int32) {
	t.next = append(t.next, chainNone)
	if ht, ok := t.fast[w]; ok {
		t.next[chainTail(ht)] = idx
		t.fast[w] = packChain(chainHead(ht), idx)
	} else {
		t.fast[w] = packChain(idx, idx)
	}
}

// linkGeneric appends row idx to the encoded-key bucket.
func (t *joinTable) linkGeneric(key []byte, idx int32) {
	t.next = append(t.next, chainNone)
	if ht, ok := t.generic[string(key)]; ok {
		t.next[chainTail(ht)] = idx
		t.generic[string(key)] = packChain(chainHead(ht), idx)
	} else {
		t.generic[string(key)] = packChain(idx, idx)
	}
}

// consumeBatch folds one build batch into the table. The common case — no
// selection vector and no NULL keys — bulk-appends whole columns and loops
// rows only to hash keys; rows with NULL keys (or batches with selections)
// take the per-row path.
func (t *joinTable) consumeBatch(b *Batch) {
	n := b.NumRows()
	if n == 0 {
		return
	}
	flats := make([][]value.Value, len(b.Cols))
	for c := range b.Cols {
		flats[c] = b.Cols[c].Flat()
	}
	if b.Sel == nil && t.fastOK && !hasNullOrString(flats[t.keys[0]]) {
		// All keys numeric: hash each row's key word, then copy columns in
		// one append per column instead of one per (row, column).
		base := int32(t.numRows())
		keys := flats[t.keys[0]]
		for i := 0; i < n; i++ {
			t.linkFast(value.NumericSortKey(keys[i]), base+int32(i))
		}
		for c := range t.cols {
			t.cols[c] = append(t.cols[c], flats[c]...)
		}
		return
	}
	for i := 0; i < n; i++ {
		t.insert(flats, b.PhysIdx(i))
	}
}

// hasNullOrString reports whether any value needs the generic key path.
func hasNullOrString(vals []value.Value) bool {
	for _, v := range vals {
		if v.Kind == value.KindNull || v.Kind == value.KindString {
			return true
		}
	}
	return false
}

// insert adds the row at physical position p of the flattened build columns,
// unless its key contains NULL.
func (t *joinTable) insert(flats [][]value.Value, p int) {
	idx := int32(t.numRows())
	if t.fastOK {
		v := flats[t.keys[0]][p]
		if w, ok := expr.NumericKeyWord(v); ok {
			t.linkFast(w, idx)
		} else if v.Kind == value.KindNull {
			return
		} else {
			t.keyBuf = value.AppendKeyValue(t.keyBuf[:0], v)
			t.linkGeneric(t.keyBuf, idx)
		}
	} else {
		t.keyBuf = t.keyBuf[:0]
		for _, k := range t.keys {
			v := flats[k][p]
			if v.Kind == value.KindNull {
				return
			}
			t.keyBuf = value.AppendKeyValue(t.keyBuf, v)
		}
		t.linkGeneric(t.keyBuf, idx)
	}
	for c := range t.cols {
		t.cols[c] = append(t.cols[c], flats[c][p])
	}
}

// mergeFrom appends another partition's rows and buckets — the morsel-order
// combine of the parallel build. Per key, the other partition's chain is
// linked after this one's, so merging partitions in morsel order reproduces
// the serial insertion order exactly.
func (t *joinTable) mergeFrom(o *joinTable) {
	offset := int32(t.numRows())
	for c := range t.cols {
		t.cols[c] = append(t.cols[c], o.cols[c]...)
	}
	for _, n := range o.next {
		if n == chainNone {
			t.next = append(t.next, chainNone)
		} else {
			t.next = append(t.next, n+offset)
		}
	}
	link := func(ht uint64, ok bool, oht uint64) uint64 {
		head, tail := chainHead(oht)+offset, chainTail(oht)+offset
		if ok {
			t.next[chainTail(ht)] = head
			return packChain(chainHead(ht), tail)
		}
		return packChain(head, tail)
	}
	for w, oht := range o.fast {
		ht, ok := t.fast[w]
		t.fast[w] = link(ht, ok, oht)
	}
	for k, oht := range o.generic {
		ht, ok := t.generic[k]
		t.generic[k] = link(ht, ok, oht)
	}
}

// Typed-key equality over-approximates SQL equality in one corner:
// value.NumericSortKey passes through float64, so two int64 keys beyond 2^53
// can share a key word even though value.Compare (exact for int-int pairs)
// orders them apart. Every hash-equal pair is therefore re-checked with
// value.Compare before it becomes a match — the same guard the planner's
// residual equality re-check used to provide, at one comparison per
// hash-equal pair instead of a predicate evaluation per output row.

// matchChain1 appends to dst the chain rows whose stored key is
// Compare-equal to the probe key v.
func (t *joinTable) matchChain1(head int32, v value.Value, dst []int32) []int32 {
	kc := t.cols[t.keys[0]]
	for m := head; m != chainNone; m = t.next[m] {
		if value.Compare(v, kc[m]) == 0 {
			dst = append(dst, m)
		}
	}
	return dst
}

// matchChainComposite appends to dst the chain rows whose stored composite
// key is Compare-equal, column by column, to the probe key at physical row p.
func (t *joinTable) matchChainComposite(head int32, b *Batch, p int, keys []int, dst []int32) []int32 {
	for m := head; m != chainNone; m = t.next[m] {
		equal := true
		for ki, k := range keys {
			if value.Compare(b.Cols[k].Get(p), t.cols[t.keys[ki]][m]) != 0 {
				equal = false
				break
			}
		}
		if equal {
			dst = append(dst, m)
		}
	}
	return dst
}

// lookup1 returns the bucket head for a single-column probe key (chainNone
// for no match). buf is a caller-owned scratch buffer (returned possibly
// regrown) so concurrent probe workers can share the immutable table.
func (t *joinTable) lookup1(v value.Value, buf []byte) (int32, []byte) {
	if w, ok := expr.NumericKeyWord(v); ok {
		if ht, ok := t.fast[w]; ok {
			return chainHead(ht), buf
		}
		return chainNone, buf
	}
	if v.Kind == value.KindNull {
		return chainNone, buf
	}
	buf = value.AppendKeyValue(buf[:0], v)
	if ht, ok := t.generic[string(buf)]; ok {
		return chainHead(ht), buf
	}
	return chainNone, buf
}

// lookupComposite returns the bucket head for a multi-column probe key read
// at physical row p of the batch.
func (t *joinTable) lookupComposite(b *Batch, p int, keys []int, buf []byte) (int32, []byte) {
	buf = buf[:0]
	for _, k := range keys {
		v := b.Cols[k].Get(p)
		if v.Kind == value.KindNull {
			return chainNone, buf
		}
		buf = value.AppendKeyValue(buf, v)
	}
	if ht, ok := t.generic[string(buf)]; ok {
		return chainHead(ht), buf
	}
	return chainNone, buf
}

// joinBuildState owns the build side of a vectorized hash join. It is shared
// by every probe-side clone of the join (plan.Parallelize creates one clone
// per morsel pipeline), so the build runs exactly once per execution: the
// first caller of ensure builds under the mutex while later callers wait and
// receive the finished table. The build operator is passed in by the caller
// — every clone carries the owning join's (possibly plan-rewritten) Build
// field — rather than captured at construction, so a Parallelize rewrite of
// the build subtree is the operator that actually executes.
type joinBuildState struct {
	keys []int

	// Parallel-build configuration, set by plan.Parallelize through
	// SetParallelBuild before execution starts.
	src     Morseler
	pipe    PipelineFunc
	workers int

	mu    sync.Mutex
	built bool
	table *joinTable
	err   error

	// ctx, when set by ApplyContext after the owning join's Open, is checked
	// inside the build drain (serial per batch, parallel per merged partition)
	// so cancellation is observed mid-build. reset clears it, so a cache-leased
	// plan drained without a context never sees a stale one. Setting it on the
	// shared state covers every probe-side clone at once.
	ctx context.Context
}

// reset forces the next ensure to rebuild (a re-Open of the owning join) and
// releases the table (Close of the owning join).
func (s *joinBuildState) reset() {
	s.mu.Lock()
	s.built, s.table, s.err = false, nil, nil
	s.ctx = nil
	s.mu.Unlock()
}

// setContext applies a drain context to the build; see ApplyContext.
func (s *joinBuildState) setContext(ctx context.Context) {
	s.mu.Lock()
	s.ctx = ctx
	s.mu.Unlock()
}

func (s *joinBuildState) ensure(input Operator) (*joinTable, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.built {
		s.table, s.err = s.buildTable(input)
		s.built = true
	}
	return s.table, s.err
}

func (s *joinBuildState) buildTable(input Operator) (*joinTable, error) {
	ncols := len(input.Schema())
	if s.workers > 1 && s.src != nil {
		if parts, ok := s.src.Morsels(DefaultMorselRows); ok && len(parts) >= 2 {
			return s.buildParallel(parts, ncols)
		}
	}
	t := newJoinTable(ncols, s.keys)
	err := drainMorsel(AsBatchOperator(input), func(b *Batch) error {
		if err := ctxErr(s.ctx); err != nil {
			return err
		}
		t.consumeBatch(b)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// buildParallel hashes the build side morsel-parallel: idle workers claim the
// next build morsel, run their private clone of the build pipeline over it
// and hash its rows into a private partition, and the partitions merge in
// morsel order into one table.
func (s *joinBuildState) buildParallel(parts []BatchOperator, ncols int) (*joinTable, error) {
	pipe := s.pipe
	if pipe == nil {
		pipe = identityPipeline
	}
	runner := newOrderedRunner(parts, s.workers, func(part BatchOperator) (any, error) {
		pt := newJoinTable(ncols, s.keys)
		if err := drainMorsel(pipe(part), func(b *Batch) error {
			pt.consumeBatch(b)
			return nil
		}); err != nil {
			return nil, err
		}
		return pt, nil
	})
	defer runner.stop()
	var total *joinTable
	for {
		if err := ctxErr(s.ctx); err != nil {
			return nil, err
		}
		val, ok, err := runner.nextResult()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if total == nil {
			total = val.(*joinTable)
		} else {
			total.mergeFrom(val.(*joinTable))
		}
	}
	if total == nil {
		total = newJoinTable(ncols, s.keys)
	}
	return total, nil
}

// VectorizedHashJoin is the batch-native hash equi-join: Probe ++ Build rows
// for every typed-key match, narrowed by an optional residual predicate. It
// implements both Operator and BatchOperator; the planner uses it wherever
// the row engine would use HashJoin (which remains the row-at-a-time test
// oracle).
type VectorizedHashJoin struct {
	Probe     Operator
	Build     Operator
	LeftKeys  []int
	RightKeys []int
	Residual  expr.Expr

	schema  []ColumnInfo
	nleft   int
	shared  *joinBuildState
	isClone bool

	bprobe     BatchOperator
	cur        *Batch
	pairsProbe []int32
	pairsBuild []int32
	pairPos    int
	keyBuf     []byte
	segMatches []int32
	dictArena  []int32
	dictSpans  [][2]int32
	rows       batchRowCursor
}

// NewVectorizedHashJoin builds a vectorized hash join on the given key
// ordinals (probe-side and build-side, pairwise).
func NewVectorizedHashJoin(probe, build Operator, leftKeys, rightKeys []int, residual expr.Expr) (*VectorizedHashJoin, error) {
	if len(leftKeys) == 0 || len(leftKeys) != len(rightKeys) {
		return nil, fmt.Errorf("exec: hash join requires matching, non-empty key lists")
	}
	return &VectorizedHashJoin{
		Probe: probe, Build: build, LeftKeys: leftKeys, RightKeys: rightKeys, Residual: residual,
		schema: concatSchemas(probe.Schema(), build.Schema()),
		nleft:  len(probe.Schema()),
		shared: &joinBuildState{keys: rightKeys},
	}, nil
}

// CloneWithProbe returns a copy of the join over a different probe input that
// shares the original's build state — the per-morsel clone plan.Parallelize
// creates so a probe-side pipeline can parallelize through the join against
// one shared hash table. The new probe must produce the original probe's
// schema.
func (j *VectorizedHashJoin) CloneWithProbe(probe Operator) *VectorizedHashJoin {
	return &VectorizedHashJoin{
		Probe: probe, Build: j.Build, LeftKeys: j.LeftKeys, RightKeys: j.RightKeys, Residual: j.Residual,
		schema: j.schema, nleft: j.nleft, shared: j.shared, isClone: true,
	}
}

// SetParallelBuild configures a morsel-parallel build: src must be the
// partitionable scan at the bottom of the join's build side and pipe the
// pipeline between that scan and the join (nil for none). plan.Parallelize
// calls this while rewriting; the build falls back to serial when src cannot
// provide at least two morsels.
func (j *VectorizedHashJoin) SetParallelBuild(src Morseler, pipe PipelineFunc, workers int) {
	j.shared.src, j.shared.pipe, j.shared.workers = src, pipe, workers
}

// BuildParallelism reports the configured build worker count (1 = serial).
func (j *VectorizedHashJoin) BuildParallelism() int {
	if j.shared.workers < 1 {
		return 1
	}
	return j.shared.workers
}

// Schema implements Operator and BatchOperator.
func (j *VectorizedHashJoin) Schema() []ColumnInfo { return j.schema }

// Open implements Operator and BatchOperator. The build itself is deferred to
// the first pull, so an opened-but-never-pulled join does no work; clones
// never reset the shared build (their Opens race during parallel execution).
func (j *VectorizedHashJoin) Open() error {
	if !j.isClone {
		j.shared.reset()
	}
	j.bprobe = AsBatchOperator(j.Probe)
	j.cur = nil
	j.pairsProbe, j.pairsBuild, j.pairPos = j.pairsProbe[:0], j.pairsBuild[:0], 0
	j.rows.reset()
	return j.Probe.Open()
}

// NextBatch implements BatchOperator.
func (j *VectorizedHashJoin) NextBatch() (*Batch, bool, error) {
	if j.bprobe == nil {
		return nil, false, errNotOpen("VectorizedHashJoin")
	}
	table, err := j.shared.ensure(j.Build)
	if err != nil {
		return nil, false, err
	}
	for {
		if j.pairPos < len(j.pairsProbe) {
			out, err := j.emit(table)
			if err != nil {
				return nil, false, err
			}
			if out != nil {
				return out, true, nil
			}
			continue // residual rejected the whole window
		}
		b, ok, err := j.bprobe.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		j.cur = b
		j.probeBatch(table, b)
	}
}

// probeBatch resolves one probe batch against the built table, buffering one
// (probe row, build row) pair per match in probe order. Key hashing is
// encoding-aware: a Const key vector hashes once for the whole batch, an RLE
// key once per clipped run, and a dictionary key once per dictionary entry —
// per-row work on a compressed probe is a bucket append, not a hash.
func (j *VectorizedHashJoin) probeBatch(t *joinTable, b *Batch) {
	j.pairsProbe, j.pairsBuild, j.pairPos = j.pairsProbe[:0], j.pairsBuild[:0], 0
	n := b.NumRows()
	if n == 0 || t.numRows() == 0 {
		return
	}
	if len(j.LeftKeys) == 1 {
		kv := b.Cols[j.LeftKeys[0]]
		kc := t.cols[t.keys[0]]
		switch {
		case kv.Encoding() == vector.Dict && len(kv.DictValues()) <= n:
			// Hash each dictionary entry once into its Compare-checked match
			// list, then map per-row codes to those lists. The lists live in
			// one join-owned arena (spans index it per code), reused across
			// batches so the hot probe loop does not allocate.
			dict, codes := kv.DictValues(), kv.Codes()
			arena, spans := j.dictArena[:0], j.dictSpans[:0]
			for _, dv := range dict {
				start := int32(len(arena))
				var head int32
				head, j.keyBuf = t.lookup1(dv, j.keyBuf)
				if head != chainNone {
					arena = t.matchChain1(head, dv, arena)
				}
				spans = append(spans, [2]int32{start, int32(len(arena))})
			}
			j.dictArena, j.dictSpans = arena, spans
			for i := 0; i < n; i++ {
				p := b.PhysIdx(i)
				s := spans[codes[p]]
				j.appendPairs(int32(p), arena[s[0]:s[1]])
			}
			return
		case kv.Encoding() == vector.Flat:
			// Flat fast path: one typed lookup per live row, chain walked with
			// the Compare guard inline.
			vals := kv.Flat()
			for i := 0; i < n; i++ {
				p := b.PhysIdx(i)
				var head int32
				head, j.keyBuf = t.lookup1(vals[p], j.keyBuf)
				for m := head; m != chainNone; m = t.next[m] {
					if value.Compare(vals[p], kc[m]) == 0 {
						j.pairsProbe = append(j.pairsProbe, int32(p))
						j.pairsBuild = append(j.pairsBuild, m)
					}
				}
			}
			return
		}
	}
	// Segment walk: Const/RLE (and multi-column) keys hash once per maximal
	// constant segment of live rows; the Compare-checked match list is built
	// once per segment and shared by every row in it.
	seg := newSegmentIter(b, j.LeftKeys, nil)
	for i := 0; i < n; {
		p, reps := seg.next(i)
		var head int32
		if len(j.LeftKeys) == 1 {
			head, j.keyBuf = t.lookup1(b.Cols[j.LeftKeys[0]].Get(p), j.keyBuf)
		} else {
			head, j.keyBuf = t.lookupComposite(b, p, j.LeftKeys, j.keyBuf)
		}
		if head != chainNone {
			j.segMatches = j.segMatches[:0]
			if len(j.LeftKeys) == 1 {
				j.segMatches = t.matchChain1(head, b.Cols[j.LeftKeys[0]].Get(p), j.segMatches)
			} else {
				j.segMatches = t.matchChainComposite(head, b, p, j.LeftKeys, j.segMatches)
			}
			for r := 0; r < reps; r++ {
				j.appendPairs(int32(p+r), j.segMatches)
			}
		}
		i += reps
	}
}

// appendPairs buffers one (probe row, build row) pair per match, in build
// insertion order.
func (j *VectorizedHashJoin) appendPairs(probe int32, matches []int32) {
	for _, m := range matches {
		j.pairsProbe = append(j.pairsProbe, probe)
		j.pairsBuild = append(j.pairsBuild, m)
	}
}

// emit materializes the next window of buffered pairs as an output batch:
// probe columns gather from the current probe batch (encoding-aware — a
// dictionary payload gathers codes, not values), build columns gather from
// the table's column store, and the residual predicate narrows the result
// through the vectorized kernels. A nil batch (no error) means the residual
// rejected every pair in the window.
func (j *VectorizedHashJoin) emit(t *joinTable) (*Batch, error) {
	end := j.pairPos + DefaultBatchSize
	if end > len(j.pairsProbe) {
		end = len(j.pairsProbe)
	}
	probeIdx := j.pairsProbe[j.pairPos:end]
	buildIdx := j.pairsBuild[j.pairPos:end]
	j.pairPos = end
	outN := len(probeIdx)
	cols := make([]*vector.Vector, len(j.schema))
	for c := 0; c < j.nleft; c++ {
		cols[c] = j.cur.Cols[c].Gather(probeIdx)
	}
	for c, src := range t.cols {
		out := make([]value.Value, outN)
		for k, i := range buildIdx {
			out[k] = src[i]
		}
		cols[j.nleft+c] = vector.NewFlat(out)
	}
	out := NewBatchFromVectors(cols)
	if j.Residual != nil {
		sel, err := expr.SelectVector(j.Residual, cols, nil, outN)
		if err != nil {
			return nil, err
		}
		if len(sel) == 0 {
			return nil, nil
		}
		if len(sel) < outN {
			out.Sel = sel
		}
	}
	return out, nil
}

// Next implements Operator.
func (j *VectorizedHashJoin) Next() (Row, bool, error) {
	return j.rows.next(j.NextBatch)
}

// Close implements Operator and BatchOperator. The build input is opened and
// closed inside the build itself; Close releases the probe side and — for the
// owning (non-clone) join — the built table, so a closed join does not pin
// the build side's memory for the rest of the query. Clones never release it:
// their Closes race while sibling morsel pipelines still probe.
func (j *VectorizedHashJoin) Close() error {
	if !j.isClone {
		j.shared.reset()
	}
	j.bprobe = nil
	j.cur = nil
	j.pairsProbe, j.pairsBuild = nil, nil
	return j.Probe.Close()
}
