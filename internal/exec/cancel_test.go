package exec

import (
	"context"
	"errors"
	"testing"

	"oldelephant/internal/value"
)

// cancelSource is a row source that fires a cancel func after producing
// `after` rows, then keeps producing up to `limit`. It makes cancellation
// latency deterministic: a breaker that checks its context per drained batch
// stops within a couple of batches of the cancel point, while a breaker that
// only notices at the end consumes all `limit` rows.
type cancelSource struct {
	after    int64
	limit    int64
	cancel   context.CancelFunc
	produced int64
}

func (s *cancelSource) Schema() []ColumnInfo {
	return []ColumnInfo{{Name: "v", Kind: value.KindInt}}
}

func (s *cancelSource) Open() error {
	s.produced = 0
	return nil
}

func (s *cancelSource) Next() (Row, bool, error) {
	if s.produced >= s.limit {
		return nil, false, nil
	}
	if s.produced == s.after && s.cancel != nil {
		s.cancel()
	}
	s.produced++
	return Row{value.NewInt(s.produced)}, true, nil
}

func (s *cancelSource) Close() error { return nil }

// latencyBudget is how many rows past the cancel point a breaker may consume
// before noticing: the batch in flight when the context fires, plus the one
// being filled at the next check.
const latencyBudget = 2 * DefaultBatchSize

func checkCancelLatency(t *testing.T, name string, src *cancelSource, op Operator) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	src.cancel = cancel
	defer cancel()
	_, err := DrainVectorizedCtx(ctx, op)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("%s: drain returned %v, want context.Canceled", name, err)
	}
	if src.produced > src.after+latencyBudget {
		t.Fatalf("%s: consumed %d rows after cancellation (cancel at %d, budget %d)",
			name, src.produced-src.after, src.after, latencyBudget)
	}
	// The same plan drained again without a context must not see the stale
	// cancelled one (the plan-cache lease pattern): Open clears it.
	src.cancel = nil
	rows, err := DrainVectorized(op)
	if err != nil {
		t.Fatalf("%s: re-drain after cancellation failed: %v", name, err)
	}
	if len(rows) == 0 {
		t.Fatalf("%s: re-drain after cancellation returned no rows", name)
	}
}

// TestCancelMidSort pins that Sort observes cancellation during its
// materialization drain, not after consuming the whole input.
func TestCancelMidSort(t *testing.T) {
	src := &cancelSource{after: 4 * DefaultBatchSize, limit: 200 * DefaultBatchSize}
	checkCancelLatency(t, "Sort", src, NewSort(src, []SortKey{{Col: 0}}))
}

// TestCancelMidHashAggregate pins the same for the aggregation build drain.
func TestCancelMidHashAggregate(t *testing.T) {
	src := &cancelSource{after: 4 * DefaultBatchSize, limit: 200 * DefaultBatchSize}
	agg := NewHashAggregate(src, []int{0}, []AggSpec{{Kind: AggCountStar, Name: "n"}})
	checkCancelLatency(t, "HashAggregate", src, agg)
}

// TestCancelMidJoinBuild pins that a vectorized hash join's build drain
// observes cancellation while consuming the build side.
func TestCancelMidJoinBuild(t *testing.T) {
	build := &cancelSource{after: 4 * DefaultBatchSize, limit: 200 * DefaultBatchSize}
	probe := &cancelSource{after: -1, limit: 8}
	join, err := NewVectorizedHashJoin(probe, build, []int{0}, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkCancelLatency(t, "VectorizedHashJoin", build, join)
}

// TestCancelRowDrain pins the row-protocol drain's per-batch-equivalent check.
func TestCancelRowDrain(t *testing.T) {
	src := &cancelSource{after: 4 * DefaultBatchSize, limit: 200 * DefaultBatchSize}
	ctx, cancel := context.WithCancel(context.Background())
	src.cancel = cancel
	defer cancel()
	_, err := DrainCtx(ctx, src)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("DrainCtx returned %v, want context.Canceled", err)
	}
	if src.produced > src.after+latencyBudget {
		t.Fatalf("DrainCtx consumed %d rows past the cancel point", src.produced-src.after)
	}
}
