package exec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"oldelephant/internal/expr"
	"oldelephant/internal/value"
)

// valuesMorseler is a test Morseler over in-memory rows with controllable
// morsel boundaries: chunk rows per morsel, optionally interleaving empty
// morsels (the "worker got a morsel whose rows all vanish" case).
type valuesMorseler struct {
	*ValuesScan
	chunk      int
	emptyEvery int // inject an empty morsel before every nth chunk
}

func (v *valuesMorseler) NumScanRows() int64 { return int64(len(v.Rows)) }

func (v *valuesMorseler) Morsels(target int) ([]BatchOperator, bool) {
	size := v.chunk
	if size <= 0 {
		size = target
	}
	var out []BatchOperator
	n := 0
	for i := 0; i < len(v.Rows); i += size {
		j := i + size
		if j > len(v.Rows) {
			j = len(v.Rows)
		}
		n++
		if v.emptyEvery > 0 && n%v.emptyEvery == 0 {
			out = append(out, NewValuesScan(v.Cols, nil))
		}
		out = append(out, NewValuesScan(v.Cols, v.Rows[i:j]))
	}
	if len(out) < 2 {
		return nil, false
	}
	return out, true
}

func testRows(n int, groups int) []Row {
	rng := rand.New(rand.NewSource(7))
	rows := make([]Row, n)
	for i := range rows {
		g := i % groups
		rows[i] = Row{
			value.NewInt(int64(g)),
			value.NewInt(int64(i)),
			value.NewFloat(rng.Float64() * 1000),
		}
	}
	return rows
}

func testSchema() []ColumnInfo {
	return []ColumnInfo{
		{Name: "g", Kind: value.KindInt},
		{Name: "n", Kind: value.KindInt},
		{Name: "x", Kind: value.KindFloat},
	}
}

func allAggSpecs() []AggSpec {
	return []AggSpec{
		{Kind: AggCountStar, Name: "cnt"},
		{Kind: AggCount, Arg: expr.NewColumn(1, "n"), Name: "cntn"},
		{Kind: AggSum, Arg: expr.NewColumn(1, "n"), Name: "sumn"},
		{Kind: AggSum, Arg: expr.NewColumn(2, "x"), Name: "sumx"},
		{Kind: AggAvg, Arg: expr.NewColumn(2, "x"), Name: "avgx"},
		{Kind: AggMin, Arg: expr.NewColumn(1, "n"), Name: "minn"},
		{Kind: AggMax, Arg: expr.NewColumn(2, "x"), Name: "maxx"},
	}
}

// rowsMatch compares result sets exactly except floats, which compare with a
// relative tolerance (parallel partial sums fold in morsel order, so float
// addition may round differently from the serial accumulation).
func rowsMatch(t *testing.T, got, want []Row, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row counts differ: got %d want %d", len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("row %d arity differs: got %d want %d", i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			g, w := got[i][j], want[i][j]
			if g.Kind == value.KindFloat && w.Kind == value.KindFloat {
				diff := math.Abs(g.F - w.F)
				scale := math.Max(math.Abs(g.F), math.Abs(w.F))
				if diff > tol*math.Max(scale, 1) {
					t.Fatalf("row %d col %d: %v vs %v (tolerance %g)", i, j, g, w, tol)
				}
				continue
			}
			if g.Kind != w.Kind || value.Compare(g, w) != 0 {
				t.Fatalf("row %d col %d: %v (%v) vs %v (%v)", i, j, g, g.Kind, w, w.Kind)
			}
		}
	}
}

// TestParallelAggStateMerge is the partial→final combining unit test for the
// aggregate state itself: splitting any value stream into partials and
// merging must agree with serial accumulation for COUNT/SUM/AVG/MIN/MAX —
// exactly for the integer-family states, within 1e-9 relative for float sums.
func TestParallelAggStateMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vals := make([]value.Value, 1000)
	for i := range vals {
		switch i % 10 {
		case 3:
			vals[i] = value.Null()
		case 7:
			vals[i] = value.NewFloat(rng.Float64()*2e6 - 1e6)
		default:
			vals[i] = value.NewInt(int64(rng.Intn(2000) - 1000))
		}
	}
	kinds := []AggKind{AggCountStar, AggCount, AggSum, AggMin, AggMax, AggAvg}
	splits := []int{0, 1, 17, 500, 999, 1000}
	for _, kind := range kinds {
		serial := newAggState()
		for _, v := range vals {
			serial.add(v, kind)
		}
		want := serial.result(kind)
		for _, split := range splits {
			a, b := newAggState(), newAggState()
			for _, v := range vals[:split] {
				a.add(v, kind)
			}
			for _, v := range vals[split:] {
				b.add(v, kind)
			}
			a.merge(b, kind)
			got := a.result(kind)
			if got.Kind == value.KindFloat && want.Kind == value.KindFloat {
				diff := math.Abs(got.F - want.F)
				if diff > 1e-9*math.Max(math.Abs(want.F), 1) {
					t.Errorf("%v split %d: merged %v, serial %v", kind, split, got, want)
				}
				continue
			}
			if got.Kind != want.Kind || value.Compare(got, want) != 0 {
				t.Errorf("%v split %d: merged %v (%v), serial %v (%v)", kind, split, got, want, got.Kind, want.Kind)
			}
		}
		// Merging a fresh (empty) partial must be a no-op — the empty-morsel
		// worker case.
		serial.merge(newAggState(), kind)
		if got := serial.result(kind); got.Kind != want.Kind || (got.Kind != value.KindFloat && value.Compare(got, want) != 0) ||
			(got.Kind == value.KindFloat && got.F != want.F) {
			t.Errorf("%v: merging an empty state changed the result: %v -> %v", kind, want, got)
		}
		// And the reverse: an empty final absorbing a partial adopts it.
		empty := newAggState()
		empty.merge(serial, kind)
		if got := empty.result(kind); got.Kind != want.Kind || (got.Kind != value.KindFloat && value.Compare(got, want) != 0) {
			t.Errorf("%v: empty state absorbing a partial lost it: want %v got %v", kind, want, got)
		}
	}
}

// TestParallelHashAggregateMatchesSerial proves the hash partial→final path:
// the parallel aggregate over chopped-up morsels (including injected empty
// ones) returns the serial operator's rows, in the serial operator's order,
// for single-group and many-group shapes.
func TestParallelHashAggregateMatchesSerial(t *testing.T) {
	for _, groups := range []int{1, 73} {
		for _, workers := range []int{2, 3, 8} {
			t.Run(fmt.Sprintf("groups=%d/workers=%d", groups, workers), func(t *testing.T) {
				rows := testRows(5000, groups)
				aggs := allAggSpecs()
				serialOp := NewHashAggregate(NewValuesScan(testSchema(), rows), []int{0}, aggs)
				want, err := DrainBatches(serialOp)
				if err != nil {
					t.Fatal(err)
				}
				src := &valuesMorseler{ValuesScan: NewValuesScan(testSchema(), rows), chunk: 617, emptyEvery: 3}
				par, ok := NewParallelHashAggregate(src, nil, []int{0}, aggs, workers)
				if !ok {
					t.Fatal("NewParallelHashAggregate refused a partitionable source")
				}
				got, err := DrainBatches(par)
				if err != nil {
					t.Fatal(err)
				}
				rowsMatch(t, got, want, 1e-9)
			})
		}
	}
}

// TestParallelHashAggregateGlobalEmpty: a global aggregate (no GROUP BY)
// over morsels that all filter to nothing still yields its single row, like
// the serial operator.
func TestParallelHashAggregateGlobalEmpty(t *testing.T) {
	rows := testRows(4000, 10)
	aggs := allAggSpecs()
	never := expr.NewBinary(expr.OpLt, expr.NewColumn(1, "n"), expr.NewConst(value.NewInt(-1)))
	build := func(src BatchOperator) BatchOperator {
		return AsBatchOperator(NewFilter(AsRowOperator(src), never))
	}
	serial := NewHashAggregate(NewFilter(NewValuesScan(testSchema(), rows), never), nil, aggs)
	want, err := DrainBatches(serial)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 1 {
		t.Fatalf("serial global aggregate over empty input returned %d rows", len(want))
	}
	src := &valuesMorseler{ValuesScan: NewValuesScan(testSchema(), rows), chunk: 500}
	par, ok := NewParallelHashAggregate(src, build, nil, aggs, 4)
	if !ok {
		t.Fatal("NewParallelHashAggregate refused a partitionable source")
	}
	got, err := DrainBatches(par)
	if err != nil {
		t.Fatal(err)
	}
	rowsMatch(t, got, want, 1e-9)
}

// TestParallelStreamAggregateMatchesSerial proves the ordered partial-run
// combining, with morsel boundaries deliberately chopping groups mid-run so
// every seam merge executes.
func TestParallelStreamAggregateMatchesSerial(t *testing.T) {
	// Grouped input: runs of equal keys with run lengths that collide with
	// the chunk size in every phase.
	var rows []Row
	for g := 0; g < 40; g++ {
		runLen := 37 + g*11%150
		for i := 0; i < runLen; i++ {
			rows = append(rows, Row{
				value.NewInt(int64(g)),
				value.NewInt(int64(i)),
				value.NewFloat(float64(g*1000 + i)),
			})
		}
	}
	aggs := allAggSpecs()
	serial := NewStreamAggregate(NewValuesScan(testSchema(), rows), []int{0}, aggs)
	want, err := DrainBatches(serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{64, 97, 1024} {
		src := &valuesMorseler{ValuesScan: NewValuesScan(testSchema(), rows), chunk: chunk, emptyEvery: 4}
		par, ok := NewParallelStreamAggregate(src, nil, []int{0}, aggs, 4)
		if !ok {
			t.Fatalf("chunk %d: NewParallelStreamAggregate refused a partitionable source", chunk)
		}
		got, err := DrainBatches(par)
		if err != nil {
			t.Fatal(err)
		}
		rowsMatch(t, got, want, 1e-9)
	}
}

// TestParallelMergeMatchesSerial proves ParallelMerge reproduces the serial
// Filter/Project pipeline's rows in the serial order, byte for byte.
func TestParallelMergeMatchesSerial(t *testing.T) {
	rows := testRows(6000, 50)
	pred := expr.NewBinary(expr.OpGt, expr.NewColumn(2, "x"), expr.NewConst(value.NewFloat(300)))
	exprs := []expr.Expr{expr.NewColumn(1, "n"), expr.NewColumn(2, "x")}
	names := []string{"n", "x"}
	serial := NewProject(NewFilter(NewValuesScan(testSchema(), rows), pred), exprs, names)
	want, err := DrainBatches(serial)
	if err != nil {
		t.Fatal(err)
	}
	build := func(src BatchOperator) BatchOperator {
		return NewProject(NewFilter(AsRowOperator(src), pred), exprs, names)
	}
	src := &valuesMorseler{ValuesScan: NewValuesScan(testSchema(), rows), chunk: 433}
	par, ok := NewParallelMerge(src, build, 4)
	if !ok {
		t.Fatal("NewParallelMerge refused a partitionable source")
	}
	got, err := DrainBatches(par)
	if err != nil {
		t.Fatal(err)
	}
	rowsMatch(t, got, want, 0)
}

// TestParallelSortMatchesSerial proves the K-way merge of per-morsel sorted
// runs reproduces the serial stable sort exactly, including the relative
// order of equal keys.
func TestParallelSortMatchesSerial(t *testing.T) {
	rows := testRows(5000, 7)
	// Sort on the group column only: heavy duplication, so stability is
	// actually exercised (column 1 disambiguates the input order).
	keys := []SortKey{{Col: 0, Desc: true}}
	serial := NewSort(NewValuesScan(testSchema(), rows), keys)
	want, err := DrainBatches(serial)
	if err != nil {
		t.Fatal(err)
	}
	src := &valuesMorseler{ValuesScan: NewValuesScan(testSchema(), rows), chunk: 391, emptyEvery: 5}
	par, ok := NewParallelSort(src, nil, keys, 4)
	if !ok {
		t.Fatal("NewParallelSort refused a partitionable source")
	}
	got, err := DrainBatches(par)
	if err != nil {
		t.Fatal(err)
	}
	rowsMatch(t, got, want, 0)
}

// TestParallelMergeEarlyClose: closing a parallel pipeline before draining it
// (a Limit parent stopping early) must shut the worker pool down without
// hanging, and re-opening must replay from the start.
func TestParallelMergeEarlyClose(t *testing.T) {
	rows := testRows(8000, 50)
	src := &valuesMorseler{ValuesScan: NewValuesScan(testSchema(), rows), chunk: 128}
	par, ok := NewParallelScan(src, 4)
	if !ok {
		t.Fatal("NewParallelScan refused a partitionable source")
	}
	for round := 0; round < 3; round++ {
		if err := par.Open(); err != nil {
			t.Fatal(err)
		}
		b, k, err := par.NextBatch()
		if err != nil || !k {
			t.Fatalf("round %d: no first batch: %v", round, err)
		}
		if got := b.Row(0)[1].Int(); got != 0 {
			t.Fatalf("round %d: first row n=%d, want 0 (replay from start)", round, got)
		}
		if err := par.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
