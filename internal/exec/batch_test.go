package exec

import (
	"fmt"
	"testing"

	"oldelephant/internal/expr"
	"oldelephant/internal/value"
	"oldelephant/internal/vector"
)

func intRow(vals ...int64) Row {
	out := make(Row, len(vals))
	for i, v := range vals {
		out[i] = value.NewInt(v)
	}
	return out
}

func TestBatchBasics(t *testing.T) {
	b := NewBatch(2, 4)
	if b.NumRows() != 0 {
		t.Fatalf("empty batch has %d rows", b.NumRows())
	}
	b.AppendRow(intRow(1, 10))
	b.AppendRow(intRow(2, 20))
	b.AppendRow(intRow(3, 30))
	if b.NumRows() != 3 {
		t.Fatalf("batch has %d rows, want 3", b.NumRows())
	}
	if got := b.Row(1); got[0].Int() != 2 || got[1].Int() != 20 {
		t.Fatalf("Row(1) = %v", got)
	}
	// Selection restricts the live rows without moving data.
	b.Sel = []int{0, 2}
	if b.NumRows() != 2 {
		t.Fatalf("selected batch has %d rows, want 2", b.NumRows())
	}
	if got := b.Row(1); got[0].Int() != 3 {
		t.Fatalf("selected Row(1) = %v, want physical row 2", got)
	}
	rows := b.AppendRows(nil)
	if len(rows) != 2 || rows[0][0].Int() != 1 || rows[1][0].Int() != 3 {
		t.Fatalf("AppendRows = %v", rows)
	}
}

func TestZeroColumnBatchKeepsRowCount(t *testing.T) {
	b := NewBatch(0, 4)
	b.AppendRow(Row{})
	b.AppendRow(Row{})
	if b.NumRows() != 2 {
		t.Fatalf("zero-column batch has %d rows, want 2", b.NumRows())
	}
}

// TestAdaptersRoundTrip pushes rows through BatchSource and RowSource and
// checks nothing is lost, reordered or duplicated across batch boundaries.
func TestAdaptersRoundTrip(t *testing.T) {
	n := 2*DefaultBatchSize + 37 // force several batches plus a partial one
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = intRow(int64(i))
	}
	cols := []ColumnInfo{{Name: "x", Kind: value.KindInt}}
	vs := NewValuesScan(cols, rows)
	rs := AsRowOperator(&BatchSource{Input: vs})
	got, err := Drain(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("round trip produced %d rows, want %d", len(got), n)
	}
	for i, r := range got {
		if r[0].Int() != int64(i) {
			t.Fatalf("row %d = %v", i, r)
		}
	}
}

// TestAsBatchOperatorIdentity: batch-native operators are not re-wrapped.
func TestAsBatchOperatorIdentity(t *testing.T) {
	vs := NewValuesScan([]ColumnInfo{{Name: "x", Kind: value.KindInt}}, nil)
	if AsBatchOperator(vs) != BatchOperator(vs) {
		t.Fatal("AsBatchOperator wrapped a batch-native operator")
	}
	f := NewFilter(vs, nil)
	if AsBatchOperator(f) != BatchOperator(f) {
		t.Fatal("AsBatchOperator wrapped a batch-native Filter")
	}
}

// rowOnly hides the batch interface of an operator, standing in for a
// not-yet-vectorized operator in plan composition tests.
type rowOnly struct {
	inner Operator
}

func (r *rowOnly) Schema() []ColumnInfo     { return r.inner.Schema() }
func (r *rowOnly) Open() error              { return r.inner.Open() }
func (r *rowOnly) Next() (Row, bool, error) { return r.inner.Next() }
func (r *rowOnly) Close() error             { return r.inner.Close() }

// buildFilterAggPlan assembles Filter -> HashAggregate over the lineitem test
// table, optionally forcing the scan behind a row-only bridge.
func buildFilterAggPlan(t *testing.T, bridge bool) Operator {
	t.Helper()
	_, lineitem, _ := buildTestDB(t)
	var scan Operator = NewSeqScan(lineitem, nil)
	if bridge {
		scan = &rowOnly{inner: scan}
	}
	pred := expr.And(
		expr.NewBinary(expr.OpGt, expr.NewColumn(2, "l_shipdate"), expr.NewConst(value.MustParseDate("1995-04-01"))),
		expr.NewBinary(expr.OpLt, expr.NewColumn(1, "l_suppkey"), expr.NewConst(value.NewInt(20))),
	)
	filtered := NewFilter(scan, pred)
	return NewHashAggregate(filtered, []int{1}, []AggSpec{
		{Kind: AggCountStar, Name: "cnt"},
		{Kind: AggSum, Arg: expr.NewColumn(3, "l_extendedprice"), Name: "rev"},
		{Kind: AggMax, Arg: expr.NewColumn(2, "l_shipdate"), Name: "maxship"},
	})
}

func rowsKey(rows []Row) string {
	s := ""
	for _, r := range rows {
		for _, v := range r {
			s += v.String() + "|"
		}
		s += "\n"
	}
	return s
}

// TestBatchRowEquivalenceFilterAgg runs the same plan through Drain and
// DrainVectorized (with and without a row-only bridge in the middle) and
// requires identical results.
func TestBatchRowEquivalenceFilterAgg(t *testing.T) {
	want, err := Drain(buildFilterAggPlan(t, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("test plan produced no rows")
	}
	for _, bridge := range []bool{false, true} {
		got, err := DrainVectorized(buildFilterAggPlan(t, bridge))
		if err != nil {
			t.Fatalf("bridge=%v: %v", bridge, err)
		}
		if rowsKey(got) != rowsKey(want) {
			t.Fatalf("bridge=%v: vectorized result differs\nvectorized:\n%srow:\n%s", bridge, rowsKey(got), rowsKey(want))
		}
	}
}

// TestBatchRowEquivalenceOperators covers the remaining vectorized operators:
// projection with computed expressions, sort, limit/offset, stream
// aggregation and seeks.
func TestBatchRowEquivalenceOperators(t *testing.T) {
	build := func(name string) func(t *testing.T) Operator {
		switch name {
		case "project-sort-limit":
			return func(t *testing.T) Operator {
				_, lineitem, _ := buildTestDB(t)
				scan := NewSeqScan(lineitem, nil)
				proj := NewProject(scan, []expr.Expr{
					expr.NewColumn(1, "l_suppkey"),
					expr.NewBinary(expr.OpMul, expr.NewColumn(3, "l_extendedprice"), expr.NewConst(value.NewFloat(1.07))),
				}, []string{"supp", "gross"})
				sorted := NewSort(proj, []SortKey{{Col: 1, Desc: true}, {Col: 0}})
				return NewLimit(sorted, 100, 13)
			}
		case "clustered-seek-stream-agg":
			return func(t *testing.T) Operator {
				_, lineitem, _ := buildTestDB(t)
				lo := []value.Value{value.MustParseDate("1995-03-01")}
				seek, err := NewClusteredSeek(lineitem, lo, nil, true, false, nil)
				if err != nil {
					t.Fatal(err)
				}
				return NewStreamAggregate(seek, []int{2}, []AggSpec{
					{Kind: AggCountStar, Name: "cnt"},
					{Kind: AggMin, Arg: expr.NewColumn(1, "l_suppkey"), Name: "minsupp"},
				})
			}
		case "values-filter":
			return func(t *testing.T) Operator {
				var rows []Row
				for i := 0; i < 3000; i++ {
					rows = append(rows, intRow(int64(i), int64(i%7)))
				}
				vs := NewValuesScan([]ColumnInfo{{Name: "a", Kind: value.KindInt}, {Name: "b", Kind: value.KindInt}}, rows)
				return NewFilter(vs, expr.NewBinary(expr.OpEq, expr.NewColumn(1, "b"), expr.NewConst(value.NewInt(3))))
			}
		}
		panic("unknown plan " + name)
	}
	for _, name := range []string{"project-sort-limit", "clustered-seek-stream-agg", "values-filter"} {
		t.Run(name, func(t *testing.T) {
			want, err := Drain(build(name)(t))
			if err != nil {
				t.Fatal(err)
			}
			got, err := DrainVectorized(build(name)(t))
			if err != nil {
				t.Fatal(err)
			}
			if len(want) == 0 {
				t.Fatal("plan produced no rows")
			}
			if rowsKey(got) != rowsKey(want) {
				t.Fatalf("vectorized result differs\nvectorized (%d rows):\n%srow (%d rows):\n%s",
					len(got), rowsKey(got), len(want), rowsKey(want))
			}
		})
	}
}

// TestScanEncodeCols: scans with EncodeCols set emit compressed vectors for
// their sort-prefix columns without changing results, and an equality seek
// collapses its leading key column to a Const vector.
func TestScanEncodeCols(t *testing.T) {
	_, lineitem, _ := buildTestDB(t) // clustered on (l_shipdate, l_suppkey)
	plain := NewSeqScan(lineitem, nil)
	want, err := DrainBatches(plain)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewSeqScan(lineitem, nil)
	enc.EncodeCols = []int{2, 1} // l_shipdate, l_suppkey output positions
	if err := enc.Open(); err != nil {
		t.Fatal(err)
	}
	var got []Row
	sawRuns := false
	for {
		b, ok, err := enc.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if e := b.Cols[2].Encoding(); e == vector.RLE || e == vector.Const {
			sawRuns = true
		}
		got = b.AppendRows(got)
	}
	enc.Close()
	if !sawRuns {
		t.Error("clustered-prefix column never compressed under EncodeCols")
	}
	if rowsKey(got) != rowsKey(want) {
		t.Fatal("EncodeCols scan changed the result")
	}
	// Equality seek on the leading clustered key: the range carries a single
	// shipdate, so the marked column arrives as one run — a Const vector.
	d := want[len(want)/2][2]
	seek, err := NewClusteredSeek(lineitem, []value.Value{d}, []value.Value{d}, true, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	seek.EncodeCols = []int{2}
	if err := seek.Open(); err != nil {
		t.Fatal(err)
	}
	b, ok, err := seek.NextBatch()
	if err != nil || !ok {
		t.Fatalf("equality seek returned nothing: ok=%v err=%v", ok, err)
	}
	if e := b.Cols[2].Encoding(); e != vector.Const {
		t.Errorf("equality-seek leading column encoding = %v, want const", e)
	}
	if v := b.Cols[2].Get(0); value.Compare(v, d) != 0 {
		t.Errorf("equality-seek constant = %v, want %v", v, d)
	}
	seek.Close()
}

// TestRowSourceAcrossBatches checks RowSource's cursor over multi-batch input
// including selection vectors produced by a filter.
func TestRowSourceAcrossBatches(t *testing.T) {
	var rows []Row
	n := DefaultBatchSize + 100
	for i := 0; i < n; i++ {
		rows = append(rows, intRow(int64(i)))
	}
	vs := NewValuesScan([]ColumnInfo{{Name: "x", Kind: value.KindInt}}, rows)
	f := NewFilter(vs, expr.NewBinary(expr.OpGe, expr.NewColumn(0, "x"), expr.NewConst(value.NewInt(0))))
	rs := &RowSource{Input: f}
	got, err := Drain(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("RowSource produced %d rows, want %d", len(got), n)
	}
}

func ExampleDrainVectorized() {
	rows := []Row{intRow(1), intRow(2), intRow(3)}
	vs := NewValuesScan([]ColumnInfo{{Name: "x", Kind: value.KindInt}}, rows)
	f := NewFilter(vs, expr.NewBinary(expr.OpGe, expr.NewColumn(0, "x"), expr.NewConst(value.NewInt(2))))
	out, _ := DrainVectorized(f)
	for _, r := range out {
		fmt.Println(r[0])
	}
	// Output:
	// 2
	// 3
}
