package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"oldelephant/internal/catalog"
	"oldelephant/internal/expr"
	"oldelephant/internal/storage"
	"oldelephant/internal/value"
)

// buildTestDB creates a small lineitem/orders pair used across executor tests.
func buildTestDB(t testing.TB) (*catalog.Catalog, *catalog.Table, *catalog.Table) {
	t.Helper()
	c := catalog.New(storage.NewPager(0), -1)
	lineitem, err := c.CreateTable("lineitem", []catalog.Column{
		{Name: "l_orderkey", Kind: value.KindInt},
		{Name: "l_suppkey", Kind: value.KindInt},
		{Name: "l_shipdate", Kind: value.KindDate},
		{Name: "l_extendedprice", Kind: value.KindFloat},
		{Name: "l_returnflag", Kind: value.KindString},
	}, []string{"l_shipdate", "l_suppkey"})
	if err != nil {
		t.Fatal(err)
	}
	orders, err := c.CreateTable("orders", []catalog.Column{
		{Name: "o_orderkey", Kind: value.KindInt},
		{Name: "o_custkey", Kind: value.KindInt},
		{Name: "o_orderdate", Kind: value.KindDate},
	}, []string{"o_orderkey"})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	var orderRows [][]value.Value
	for ok := 0; ok < 200; ok++ {
		orderRows = append(orderRows, []value.Value{
			value.NewInt(int64(ok)),
			value.NewInt(int64(rng.Intn(20))),
			value.NewDate(value.MustParseDate("1995-01-01").Int() + int64(rng.Intn(365))),
		})
	}
	if err := orders.BulkLoad(orderRows); err != nil {
		t.Fatal(err)
	}
	var liRows [][]value.Value
	for i := 0; i < 1000; i++ {
		flag := "N"
		if i%5 == 0 {
			flag = "R"
		}
		liRows = append(liRows, []value.Value{
			value.NewInt(int64(i % 200)), // orderkey joins orders
			value.NewInt(int64(i % 25)),
			value.NewDate(value.MustParseDate("1995-01-01").Int() + int64(i%300)),
			value.NewFloat(float64(100 + i%50)),
			value.NewString(flag),
		})
	}
	if err := lineitem.BulkLoad(liRows); err != nil {
		t.Fatal(err)
	}
	return c, lineitem, orders
}

func drain(t testing.TB, op Operator) []Row {
	t.Helper()
	rows, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestValuesScan(t *testing.T) {
	vs := NewValuesScan([]ColumnInfo{{Name: "x", Kind: value.KindInt}}, []Row{
		{value.NewInt(1)}, {value.NewInt(2)},
	})
	rows := drain(t, vs)
	if len(rows) != 2 || rows[1][0].Int() != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if len(vs.Schema()) != 1 || vs.Schema()[0].Name != "x" {
		t.Error("schema wrong")
	}
}

func TestSeqScanAndProjectionPushdown(t *testing.T) {
	_, lineitem, _ := buildTestDB(t)
	full := drain(t, NewSeqScan(lineitem, nil))
	if len(full) != 1000 {
		t.Fatalf("full scan rows = %d", len(full))
	}
	if len(full[0]) != 5 {
		t.Fatalf("full scan width = %d", len(full[0]))
	}
	proj := NewSeqScan(lineitem, []int{2, 1})
	rows := drain(t, proj)
	if len(rows) != 1000 || len(rows[0]) != 2 {
		t.Fatalf("projected scan shape wrong")
	}
	sch := proj.Schema()
	if sch[0].Name != "l_shipdate" || sch[1].Name != "l_suppkey" {
		t.Errorf("schema = %v", sch)
	}
	// Clustered scan order: shipdate ascending.
	for i := 1; i < len(rows); i++ {
		if value.Compare(rows[i-1][0], rows[i][0]) > 0 {
			t.Fatal("clustered scan not ordered by shipdate")
		}
	}
	// Next before Open errors.
	raw := NewSeqScan(lineitem, nil)
	if _, _, err := raw.Next(); err == nil {
		t.Error("Next before Open should error")
	}
}

func TestClusteredSeek(t *testing.T) {
	_, lineitem, _ := buildTestDB(t)
	lo := []value.Value{value.MustParseDate("1995-03-01")}
	hi := []value.Value{value.MustParseDate("1995-03-31")}
	seek, err := NewClusteredSeek(lineitem, lo, hi, true, true, []int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, seek)
	if len(rows) == 0 {
		t.Fatal("expected rows in March 1995")
	}
	for _, r := range rows {
		d := r[0].String()
		if d < "1995-03-01" || d > "1995-03-31" {
			t.Fatalf("row outside range: %s", d)
		}
	}
	// Compare against a filtered full scan.
	filtered := drain(t, NewFilter(NewSeqScan(lineitem, []int{2, 1}),
		&expr.Between{
			E:  expr.NewColumn(0, "l_shipdate"),
			Lo: expr.NewConst(value.MustParseDate("1995-03-01")),
			Hi: expr.NewConst(value.MustParseDate("1995-03-31")),
		}))
	if len(filtered) != len(rows) {
		t.Errorf("seek found %d rows, filter found %d", len(rows), len(filtered))
	}
	// Heap table cannot be cluster-seeked.
	c := catalog.New(storage.NewPager(0), 0)
	heap, _ := c.CreateTable("h", []catalog.Column{{Name: "a", Kind: value.KindInt}}, nil)
	if _, err := NewClusteredSeek(heap, nil, nil, true, true, nil); err == nil {
		t.Error("clustered seek on heap should fail")
	}
	if _, _, err := (&ClusteredSeek{}).Next(); err == nil {
		t.Error("Next before Open should error")
	}
}

func TestIndexSeekCoveringAndLookup(t *testing.T) {
	c, lineitem, _ := buildTestDB(t)
	idx, err := c.CreateIndex("ix_supp", "lineitem", []string{"l_suppkey"}, []string{"l_extendedprice"}, false)
	if err != nil {
		t.Fatal(err)
	}
	// Covered: suppkey, price, shipdate (clustered key).
	covered, err := NewIndexSeek(idx, []value.Value{value.NewInt(7)}, []value.Value{value.NewInt(7)}, true, true, []int{1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !covered.Covered() {
		t.Error("seek should be covered")
	}
	rows := drain(t, covered)
	if len(rows) != 40 { // 1000 rows, suppkey = i%25 == 7
		t.Fatalf("covered seek rows = %d, want 40", len(rows))
	}
	for _, r := range rows {
		if r[0].Int() != 7 {
			t.Fatal("wrong suppkey from covered seek")
		}
	}
	// Non-covered: needs l_returnflag, so each entry resolves to the base row.
	lookup, err := NewIndexSeek(idx, []value.Value{value.NewInt(7)}, []value.Value{value.NewInt(7)}, true, true, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if lookup.Covered() {
		t.Error("seek should not be covered")
	}
	rows = drain(t, lookup)
	if len(rows) != 40 {
		t.Fatalf("lookup seek rows = %d, want 40", len(rows))
	}
	for _, r := range rows {
		if r[0].Int() != 7 {
			t.Fatal("wrong suppkey from lookup seek")
		}
		if s := r[1].S; s != "N" && s != "R" {
			t.Fatalf("bad returnflag %q", s)
		}
	}
	if _, _, err := (&IndexSeek{}).Next(); err == nil {
		t.Error("Next before Open should error")
	}
	_ = lineitem
}

func TestFilterProjectLimit(t *testing.T) {
	_, lineitem, _ := buildTestDB(t)
	// price * 2 for R-flagged rows, limit 10 offset 5.
	scan := NewSeqScan(lineitem, []int{3, 4})
	filter := NewFilter(scan, expr.Eq(expr.NewColumn(1, "l_returnflag"), expr.NewConst(value.NewString("R"))))
	proj := NewProject(filter, []expr.Expr{
		expr.NewBinary(expr.OpMul, expr.NewColumn(0, "l_extendedprice"), expr.NewConst(value.NewInt(2))),
		expr.NewColumn(1, "l_returnflag"),
	}, []string{"double_price", "flag"})
	lim := NewLimit(proj, 10, 5)
	rows := drain(t, lim)
	if len(rows) != 10 {
		t.Fatalf("limit returned %d rows", len(rows))
	}
	for _, r := range rows {
		if r[1].S != "R" {
			t.Error("filter leaked a non-R row")
		}
		if r[0].Float() < 200 {
			t.Error("projection arithmetic wrong")
		}
	}
	if lim.Schema()[0].Name != "double_price" {
		t.Errorf("projection schema = %v", lim.Schema())
	}
	// Limit of -1 means unlimited.
	all := drain(t, NewLimit(NewSeqScan(lineitem, nil), -1, 0))
	if len(all) != 1000 {
		t.Errorf("unlimited limit returned %d", len(all))
	}
}

func TestSort(t *testing.T) {
	_, lineitem, _ := buildTestDB(t)
	s := NewSort(NewSeqScan(lineitem, []int{1, 3}), []SortKey{{Col: 0, Desc: false}, {Col: 1, Desc: true}})
	rows := drain(t, s)
	if len(rows) != 1000 {
		t.Fatalf("sort returned %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		a, b := rows[i-1], rows[i]
		if value.Compare(a[0], b[0]) > 0 {
			t.Fatal("primary sort key violated")
		}
		if value.Compare(a[0], b[0]) == 0 && value.Compare(a[1], b[1]) < 0 {
			t.Fatal("descending secondary key violated")
		}
	}
}

func TestHashAndStreamAggregatesAgree(t *testing.T) {
	_, lineitem, _ := buildTestDB(t)
	aggs := []AggSpec{
		{Kind: AggCountStar, Name: "cnt"},
		{Kind: AggSum, Arg: expr.NewColumn(1, "l_extendedprice"), Name: "total"},
		{Kind: AggMax, Arg: expr.NewColumn(1, "l_extendedprice"), Name: "maxp"},
		{Kind: AggMin, Arg: expr.NewColumn(1, "l_extendedprice"), Name: "minp"},
		{Kind: AggAvg, Arg: expr.NewColumn(1, "l_extendedprice"), Name: "avgp"},
	}
	// Group by suppkey: hash aggregate over a scan projecting (suppkey, price).
	hash := NewHashAggregate(NewSeqScan(lineitem, []int{1, 3}), []int{0}, aggs)
	hashRows := drain(t, hash)
	if len(hashRows) != 25 {
		t.Fatalf("hash agg groups = %d, want 25", len(hashRows))
	}
	// Stream aggregate requires sorted input.
	sorted := NewSort(NewSeqScan(lineitem, []int{1, 3}), []SortKey{{Col: 0}})
	stream := NewStreamAggregate(sorted, []int{0}, aggs)
	streamRows := drain(t, stream)
	if len(streamRows) != len(hashRows) {
		t.Fatalf("stream agg groups = %d, hash = %d", len(streamRows), len(hashRows))
	}
	sort.Slice(streamRows, func(i, j int) bool { return streamRows[i][0].Int() < streamRows[j][0].Int() })
	sort.Slice(hashRows, func(i, j int) bool { return hashRows[i][0].Int() < hashRows[j][0].Int() })
	for i := range hashRows {
		for col := range hashRows[i] {
			if value.Compare(hashRows[i][col], streamRows[i][col]) != 0 {
				t.Fatalf("group %d col %d: hash=%v stream=%v", i, col, hashRows[i][col], streamRows[i][col])
			}
		}
	}
	// Sanity check: each group has 40 rows.
	for _, r := range hashRows {
		if r[1].Int() != 40 {
			t.Errorf("group %v count = %v", r[0], r[1])
		}
		if r[5].IsNull() {
			t.Error("avg should not be NULL")
		}
	}
	schema := hash.Schema()
	if schema[0].Name != "l_suppkey" || schema[1].Name != "cnt" {
		t.Errorf("agg schema = %v", schema)
	}
}

func TestGlobalAggregatesOnEmptyInput(t *testing.T) {
	empty := NewValuesScan([]ColumnInfo{{Name: "x", Kind: value.KindInt}}, nil)
	aggs := []AggSpec{
		{Kind: AggCountStar, Name: "cnt"},
		{Kind: AggSum, Arg: expr.NewColumn(0, "x"), Name: "s"},
		{Kind: AggMax, Arg: expr.NewColumn(0, "x"), Name: "m"},
	}
	rows := drain(t, NewHashAggregate(empty, nil, aggs))
	if len(rows) != 1 {
		t.Fatalf("global agg over empty input should yield one row, got %d", len(rows))
	}
	if rows[0][0].Int() != 0 || !rows[0][1].IsNull() || !rows[0][2].IsNull() {
		t.Errorf("empty-input aggregates = %v", rows[0])
	}
	empty2 := NewValuesScan([]ColumnInfo{{Name: "x", Kind: value.KindInt}}, nil)
	rows = drain(t, NewStreamAggregate(empty2, nil, aggs))
	if len(rows) != 1 || rows[0][0].Int() != 0 {
		t.Errorf("stream global agg over empty input = %v", rows)
	}
	// Grouped aggregate over empty input yields no rows.
	empty3 := NewValuesScan([]ColumnInfo{{Name: "x", Kind: value.KindInt}}, nil)
	rows = drain(t, NewHashAggregate(empty3, []int{0}, aggs))
	if len(rows) != 0 {
		t.Errorf("grouped agg over empty input = %v", rows)
	}
}

func TestAggregateNullHandling(t *testing.T) {
	vs := NewValuesScan([]ColumnInfo{{Name: "g", Kind: value.KindInt}, {Name: "v", Kind: value.KindInt}}, []Row{
		{value.NewInt(1), value.NewInt(10)},
		{value.NewInt(1), value.Null()},
		{value.NewInt(1), value.NewInt(20)},
	})
	aggs := []AggSpec{
		{Kind: AggCountStar, Name: "cstar"},
		{Kind: AggCount, Arg: expr.NewColumn(1, "v"), Name: "cv"},
		{Kind: AggSum, Arg: expr.NewColumn(1, "v"), Name: "s"},
		{Kind: AggAvg, Arg: expr.NewColumn(1, "v"), Name: "a"},
	}
	rows := drain(t, NewHashAggregate(vs, []int{0}, aggs))
	if len(rows) != 1 {
		t.Fatal("expected one group")
	}
	r := rows[0]
	if r[1].Int() != 3 {
		t.Errorf("COUNT(*) = %v", r[1])
	}
	if r[2].Int() != 2 {
		t.Errorf("COUNT(v) = %v", r[2])
	}
	if r[3].Int() != 30 {
		t.Errorf("SUM(v) = %v", r[3])
	}
	if r[4].Float() != 15 {
		t.Errorf("AVG(v) = %v", r[4])
	}
}

func TestNestedLoopJoin(t *testing.T) {
	_, lineitem, orders := buildTestDB(t)
	// Join on orderkey with a tiny outer: orders with o_orderkey < 3.
	outer := NewFilter(NewSeqScan(orders, []int{0, 2}),
		expr.NewBinary(expr.OpLt, expr.NewColumn(0, "o_orderkey"), expr.NewConst(value.NewInt(3))))
	inner := NewSeqScan(lineitem, []int{0, 1})
	pred := expr.Eq(expr.NewColumn(0, "o_orderkey"), expr.NewColumn(2, "l_orderkey"))
	join := NewNestedLoopJoin(outer, inner, pred)
	rows := drain(t, join)
	if len(rows) != 15 { // 3 orders x 5 lineitems each (1000/200)
		t.Fatalf("NLJ rows = %d, want 15", len(rows))
	}
	for _, r := range rows {
		if value.Compare(r[0], r[2]) != 0 {
			t.Fatal("join predicate violated")
		}
	}
	if len(join.Schema()) != 4 {
		t.Errorf("join schema width = %d", len(join.Schema()))
	}
}

func TestHashJoinMatchesNestedLoop(t *testing.T) {
	_, lineitem, orders := buildTestDB(t)
	build := func() (Operator, Operator) {
		return NewSeqScan(orders, []int{0, 1}), NewSeqScan(lineitem, []int{0, 3})
	}
	l1, r1 := build()
	hj, err := NewHashJoin(l1, r1, []int{0}, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	hjRows := drain(t, hj)
	l2, r2 := build()
	nlj := NewNestedLoopJoin(l2, r2, expr.Eq(expr.NewColumn(0, "o_orderkey"), expr.NewColumn(2, "l_orderkey")))
	nljRows := drain(t, nlj)
	if len(hjRows) != len(nljRows) {
		t.Fatalf("hash join %d rows, NLJ %d rows", len(hjRows), len(nljRows))
	}
	if len(hjRows) != 1000 {
		t.Fatalf("expected 1000 join rows, got %d", len(hjRows))
	}
	// Residual predicate applies on top of the equi-join.
	l3, r3 := build()
	hj2, _ := NewHashJoin(l3, r3, []int{0}, []int{0},
		expr.NewBinary(expr.OpGt, expr.NewColumn(3, "l_extendedprice"), expr.NewConst(value.NewFloat(140))))
	filtered := drain(t, hj2)
	if len(filtered) == 0 || len(filtered) >= 1000 {
		t.Errorf("residual-filtered join rows = %d", len(filtered))
	}
	// Invalid key lists.
	if _, err := NewHashJoin(l1, r1, nil, nil, nil); err == nil {
		t.Error("hash join without keys should fail")
	}
	if _, err := NewMergeJoin(l1, r1, []int{0}, nil, nil); err == nil {
		t.Error("merge join with mismatched keys should fail")
	}
}

func TestMergeJoinMatchesHashJoin(t *testing.T) {
	_, lineitem, orders := buildTestDB(t)
	// Sort both sides on the join key.
	newSortedPair := func() (Operator, Operator) {
		left := NewSort(NewSeqScan(orders, []int{0, 1}), []SortKey{{Col: 0}})
		right := NewSort(NewSeqScan(lineitem, []int{0, 3}), []SortKey{{Col: 0}})
		return left, right
	}
	l1, r1 := newSortedPair()
	mj, err := NewMergeJoin(l1, r1, []int{0}, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mjRows := drain(t, mj)
	l2, r2 := newSortedPair()
	hj, _ := NewHashJoin(l2, r2, []int{0}, []int{0}, nil)
	hjRows := drain(t, hj)
	if len(mjRows) != len(hjRows) {
		t.Fatalf("merge join %d rows, hash join %d rows", len(mjRows), len(hjRows))
	}
	// Compare multisets via sorted string keys.
	toKeys := func(rows []Row) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = fmt.Sprint(r)
		}
		sort.Strings(out)
		return out
	}
	a, b := toKeys(mjRows), toKeys(hjRows)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row multiset mismatch at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestMergeJoinManyToMany(t *testing.T) {
	cols := []ColumnInfo{{Name: "k", Kind: value.KindInt}, {Name: "tag", Kind: value.KindString}}
	left := NewValuesScan(cols, []Row{
		{value.NewInt(1), value.NewString("l1")},
		{value.NewInt(2), value.NewString("l2a")},
		{value.NewInt(2), value.NewString("l2b")},
		{value.NewInt(4), value.NewString("l4")},
	})
	right := NewValuesScan(cols, []Row{
		{value.NewInt(0), value.NewString("r0")},
		{value.NewInt(2), value.NewString("r2a")},
		{value.NewInt(2), value.NewString("r2b")},
		{value.NewInt(2), value.NewString("r2c")},
		{value.NewInt(3), value.NewString("r3")},
	})
	mj, err := NewMergeJoin(left, right, []int{0}, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, mj)
	if len(rows) != 6 { // 2 left x 3 right for key 2
		t.Fatalf("many-to-many merge join rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r[0].Int() != 2 || r[2].Int() != 2 {
			t.Fatalf("unexpected joined row %v", r)
		}
	}
}

func TestIndexNestedLoopBandJoin(t *testing.T) {
	// Build two "c-table"-shaped relations and band-join them the way the
	// paper's rewritten Q3 does: T1.f BETWEEN T0.f AND T0.f + T0.c - 1.
	c := catalog.New(storage.NewPager(0), -1)
	t0, _ := c.CreateTable("t0", []catalog.Column{
		{Name: "f", Kind: value.KindInt}, {Name: "v", Kind: value.KindDate}, {Name: "c", Kind: value.KindInt},
	}, []string{"f"})
	t1, _ := c.CreateTable("t1", []catalog.Column{
		{Name: "f", Kind: value.KindInt}, {Name: "v", Kind: value.KindInt}, {Name: "c", Kind: value.KindInt},
	}, []string{"f"})
	// t0: runs of 10 positions per value; t1: runs of 2 positions.
	var t0Rows, t1Rows [][]value.Value
	for i := 0; i < 10; i++ {
		t0Rows = append(t0Rows, []value.Value{
			value.NewInt(int64(i*10 + 1)), value.NewDate(int64(9000 + i)), value.NewInt(10),
		})
	}
	for i := 0; i < 50; i++ {
		t1Rows = append(t1Rows, []value.Value{
			value.NewInt(int64(i*2 + 1)), value.NewInt(int64(i % 7)), value.NewInt(2),
		})
	}
	if err := t0.BulkLoad(t0Rows); err != nil {
		t.Fatal(err)
	}
	if err := t1.BulkLoad(t1Rows); err != nil {
		t.Fatal(err)
	}
	// Outer: t0 rows with v >= 9005 (5 runs, covering positions 51..100).
	outer := NewFilter(NewSeqScan(t0, nil),
		expr.NewBinary(expr.OpGe, expr.NewColumn(1, "v"), expr.NewConst(value.NewDate(9005))))
	// Inner: t1 seek f BETWEEN outer.f AND outer.f+outer.c-1.
	inner := InnerSeekSpec{
		Table:   t1,
		LoExprs: []expr.Expr{expr.NewColumn(0, "f")},
		HiExprs: []expr.Expr{expr.NewBinary(expr.OpSub,
			expr.NewBinary(expr.OpAdd, expr.NewColumn(0, "f"), expr.NewColumn(2, "c")),
			expr.NewConst(value.NewInt(1)))},
		LoIncl: true, HiIncl: true,
	}
	join, err := NewIndexNestedLoopJoin(outer, inner, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, join)
	// Each of the 5 outer runs spans 10 positions = 5 t1 runs; 5*5 = 25 matches.
	if len(rows) != 25 {
		t.Fatalf("band join rows = %d, want 25", len(rows))
	}
	for _, r := range rows {
		outerF, outerC := r[0].Int(), r[2].Int()
		innerF := r[3].Int()
		if innerF < outerF || innerF > outerF+outerC-1 {
			t.Fatalf("band join produced out-of-range match: %v", r)
		}
	}
	// Residual predicate filters inner values.
	join2, _ := NewIndexNestedLoopJoin(
		NewFilter(NewSeqScan(t0, nil),
			expr.NewBinary(expr.OpGe, expr.NewColumn(1, "v"), expr.NewConst(value.NewDate(9005)))),
		inner,
		expr.Eq(expr.NewColumn(4, "v"), expr.NewConst(value.NewInt(3))))
	filtered := drain(t, join2)
	if len(filtered) == 0 || len(filtered) >= 25 {
		t.Errorf("residual band join rows = %d", len(filtered))
	}
	// Error cases.
	if _, err := NewIndexNestedLoopJoin(outer, InnerSeekSpec{}, nil); err == nil {
		t.Error("inner seek without table should fail")
	}
	heapT, _ := c.CreateTable("heap", []catalog.Column{{Name: "a", Kind: value.KindInt}}, nil)
	if _, err := NewIndexNestedLoopJoin(outer, InnerSeekSpec{Table: heapT}, nil); err == nil {
		t.Error("inner seek on unindexed heap should fail")
	}
}

func TestIndexNestedLoopJoinOnSecondaryIndex(t *testing.T) {
	c, lineitem, orders := buildTestDB(t)
	idx, err := c.CreateIndex("ix_lo", "lineitem", []string{"l_orderkey"}, []string{"l_extendedprice"}, false)
	if err != nil {
		t.Fatal(err)
	}
	outer := NewFilter(NewSeqScan(orders, []int{0, 2}),
		expr.NewBinary(expr.OpLt, expr.NewColumn(0, "o_orderkey"), expr.NewConst(value.NewInt(10))))
	inner := InnerSeekSpec{
		Table:   lineitem,
		Index:   idx,
		LoExprs: []expr.Expr{expr.NewColumn(0, "o_orderkey")},
		HiExprs: []expr.Expr{expr.NewColumn(0, "o_orderkey")},
		LoIncl:  true, HiIncl: true,
		Cols: []int{0, 3},
	}
	join, err := NewIndexNestedLoopJoin(outer, inner, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, join)
	if len(rows) != 50 { // 10 orders x 5 lineitems
		t.Fatalf("INL join rows = %d, want 50", len(rows))
	}
	for _, r := range rows {
		if value.Compare(r[0], r[2]) != 0 {
			t.Fatal("INL join key mismatch")
		}
	}
}

func TestDrainPropagatesOpenErrors(t *testing.T) {
	_, lineitem, _ := buildTestDB(t)
	// A merge join whose child errors on Open: simulate via closed operator misuse.
	bad := &ClusteredSeek{Table: lineitem} // no schema/bounds: Open ok, but use heap table to force error
	c := catalog.New(storage.NewPager(0), 0)
	heap, _ := c.CreateTable("h", []catalog.Column{{Name: "a", Kind: value.KindInt}}, nil)
	bad.Table = heap
	if _, err := Drain(bad); err == nil {
		t.Error("Drain should propagate Open errors")
	}
}
