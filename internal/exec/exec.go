// Package exec implements the physical query-execution operators of the row
// store. Operators follow the Volcano iterator model: Open, repeated Next,
// Close. Rows are slices of value.Value; every operator exposes the schema
// of the rows it produces so parents can bind expressions by ordinal.
//
// The operator set mirrors what the paper relies on in SQL Server: heap and
// clustered-index scans, index seeks on secondary covering indexes,
// index-nested-loop joins whose inner range depends on the outer row (the
// "band joins" used for c-tables), merge and hash joins, and stream- and
// hash-based aggregation.
package exec

import (
	"fmt"

	"oldelephant/internal/value"
)

// Row is one tuple flowing between operators.
type Row = []value.Value

// ColumnInfo describes one output column of an operator.
type ColumnInfo struct {
	Name string
	Kind value.Kind
}

// Operator is a physical plan node.
type Operator interface {
	// Schema describes the rows produced by Next.
	Schema() []ColumnInfo
	// Open prepares the operator for iteration.
	Open() error
	// Next returns the next row. ok is false when the input is exhausted.
	Next() (row Row, ok bool, err error)
	// Close releases resources. It is safe to call after a failed Open.
	Close() error
}

// Drain runs an operator to completion and returns all produced rows. It is
// a convenience for tests, examples and the engine's result collection.
func Drain(op Operator) ([]Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []Row
	for {
		row, ok, err := op.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, row)
	}
}

// concatSchemas appends two schemas (used by joins).
func concatSchemas(a, b []ColumnInfo) []ColumnInfo {
	out := make([]ColumnInfo, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

// concatRows appends two rows into a fresh slice.
func concatRows(a, b Row) Row {
	out := make(Row, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

// errNotOpen is returned by operators used before Open.
func errNotOpen(op string) error { return fmt.Errorf("exec: %s used before Open", op) }

// ValuesScan produces a fixed list of rows; it backs INSERT ... VALUES,
// constant SELECTs and tests.
type ValuesScan struct {
	Cols []ColumnInfo
	Rows []Row
	pos  int
}

// NewValuesScan builds a ValuesScan.
func NewValuesScan(cols []ColumnInfo, rows []Row) *ValuesScan {
	return &ValuesScan{Cols: cols, Rows: rows}
}

// Schema implements Operator.
func (v *ValuesScan) Schema() []ColumnInfo { return v.Cols }

// Open implements Operator.
func (v *ValuesScan) Open() error { v.pos = 0; return nil }

// Next implements Operator.
func (v *ValuesScan) Next() (Row, bool, error) {
	if v.pos >= len(v.Rows) {
		return nil, false, nil
	}
	row := v.Rows[v.pos]
	v.pos++
	return row, true, nil
}

// NextBatch implements BatchOperator.
func (v *ValuesScan) NextBatch() (*Batch, bool, error) {
	if v.pos >= len(v.Rows) {
		return nil, false, nil
	}
	return batchFromRows(v.Rows, &v.pos, len(v.Cols)), true, nil
}

// Close implements Operator.
func (v *ValuesScan) Close() error { return nil }
