package exec

import (
	"testing"

	"oldelephant/internal/catalog"
	"oldelephant/internal/expr"
	"oldelephant/internal/storage"
	"oldelephant/internal/value"
)

// Edge-behavior tests for the row-at-a-time joins: empty inputs, all-duplicate
// keys, NULL join keys and residuals that reject every match. These pin SQL
// semantics the original operators got wrong — value.Compare orders NULL equal
// to NULL, so MergeJoin paired NULL keys, and IndexNestedLoopJoin seeded seeks
// with NULL bounds (which sort before everything and match real rows).

func intCols(names ...string) []ColumnInfo {
	out := make([]ColumnInfo, len(names))
	for i, n := range names {
		out[i] = ColumnInfo{Name: n, Kind: value.KindInt}
	}
	return out
}

func TestMergeJoinEmptyInputs(t *testing.T) {
	cols := intCols("k", "v")
	some := []Row{intRow(1, 10), intRow(2, 20)}
	cases := map[string]struct{ left, right []Row }{
		"empty right": {some, nil},
		"empty left":  {nil, some},
		"both empty":  {nil, nil},
	}
	for name, c := range cases {
		mj, err := NewMergeJoin(NewValuesScan(cols, c.left), NewValuesScan(cols, c.right), []int{0}, []int{0}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rows := drain(t, mj); len(rows) != 0 {
			t.Errorf("%s: merge join produced %d rows, want 0", name, len(rows))
		}
	}
}

func TestMergeJoinNullKeysNeverMatch(t *testing.T) {
	cols := []ColumnInfo{{Name: "k", Kind: value.KindInt}, {Name: "v", Kind: value.KindInt}}
	// Sorted inputs with NULL keys first (value order puts NULL before all).
	left := []Row{
		{value.Null(), value.NewInt(100)},
		{value.Null(), value.NewInt(101)},
		{value.NewInt(1), value.NewInt(102)},
		{value.NewInt(3), value.NewInt(103)},
	}
	right := []Row{
		{value.Null(), value.NewInt(200)},
		{value.NewInt(1), value.NewInt(201)},
		{value.NewInt(2), value.NewInt(202)},
	}
	mj, err := NewMergeJoin(NewValuesScan(cols, left), NewValuesScan(cols, right), []int{0}, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, mj)
	if len(rows) != 1 {
		t.Fatalf("NULL keys matched in merge join: got %d rows, want 1", len(rows))
	}
	if rows[0][0].Int() != 1 || rows[0][2].Int() != 1 {
		t.Fatalf("unexpected merge join row %v", rows[0])
	}
	// Composite keys with a NULL component never match either.
	ccols := intCols("a", "b")
	cleft := []Row{{value.NewInt(1), value.Null()}, {value.NewInt(1), value.NewInt(2)}}
	cright := []Row{{value.NewInt(1), value.Null()}, {value.NewInt(1), value.NewInt(2)}}
	cmj, err := NewMergeJoin(NewValuesScan(ccols, cleft), NewValuesScan(ccols, cright), []int{0, 1}, []int{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	crows := drain(t, cmj)
	if len(crows) != 1 {
		t.Fatalf("composite NULL keys matched: got %d rows, want 1", len(crows))
	}
}

func TestMergeJoinAllDuplicateKeys(t *testing.T) {
	cols := intCols("k", "v")
	var left, right []Row
	for i := 0; i < 7; i++ {
		left = append(left, intRow(42, int64(i)))
	}
	for i := 0; i < 5; i++ {
		right = append(right, intRow(42, int64(100+i)))
	}
	mj, err := NewMergeJoin(NewValuesScan(cols, left), NewValuesScan(cols, right), []int{0}, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, mj)
	if len(rows) != 35 {
		t.Fatalf("all-duplicate merge join rows = %d, want 35", len(rows))
	}
	// Same shape through the hash joins.
	hj, _ := NewHashJoin(NewValuesScan(cols, left), NewValuesScan(cols, right), []int{0}, []int{0}, nil)
	if rows := drain(t, hj); len(rows) != 35 {
		t.Errorf("all-duplicate hash join rows = %d, want 35", len(rows))
	}
	vj, _ := NewVectorizedHashJoin(NewValuesScan(cols, left), NewValuesScan(cols, right), []int{0}, []int{0}, nil)
	if rows := drainVec(t, vj); len(rows) != 35 {
		t.Errorf("all-duplicate vectorized hash join rows = %d, want 35", len(rows))
	}
}

func TestMergeJoinResidualRejectsAll(t *testing.T) {
	cols := intCols("k", "v")
	left := []Row{intRow(1, 1), intRow(2, 2)}
	right := []Row{intRow(1, 10), intRow(2, 20)}
	never := expr.NewBinary(expr.OpLt, expr.NewColumn(1, "v"), expr.NewConst(value.NewInt(-1)))
	mj, err := NewMergeJoin(NewValuesScan(cols, left), NewValuesScan(cols, right), []int{0}, []int{0}, never)
	if err != nil {
		t.Fatal(err)
	}
	if rows := drain(t, mj); len(rows) != 0 {
		t.Errorf("merge join with all-rejecting residual produced %d rows", len(rows))
	}
}

// inlFixture builds an inner table clustered on k — including a NULL-keyed
// row, which a NULL-bounded seek would otherwise pick up — and an outer
// ValuesScan whose k column supplies the probe bounds.
func inlFixture(t *testing.T, outerRows []Row) (*IndexNestedLoopJoin, error) {
	t.Helper()
	c := catalog.New(storage.NewPager(0), -1)
	inner, err := c.CreateTable("inner", []catalog.Column{
		{Name: "k", Kind: value.KindInt},
		{Name: "w", Kind: value.KindInt},
	}, []string{"k", "w"})
	if err != nil {
		t.Fatal(err)
	}
	innerRows := [][]value.Value{
		{value.Null(), value.NewInt(999)},
		{value.NewInt(1), value.NewInt(10)},
		{value.NewInt(1), value.NewInt(11)},
		{value.NewInt(2), value.NewInt(20)},
		{value.NewInt(5), value.NewInt(50)},
	}
	if err := inner.BulkLoad(innerRows); err != nil {
		t.Fatal(err)
	}
	outer := NewValuesScan(intCols("k"), outerRows)
	spec := InnerSeekSpec{
		Table:   inner,
		LoExprs: []expr.Expr{expr.NewColumn(0, "k")},
		HiExprs: []expr.Expr{expr.NewColumn(0, "k")},
		LoIncl:  true, HiIncl: true,
	}
	return NewIndexNestedLoopJoin(outer, spec, nil)
}

func TestIndexNestedLoopJoinNullBounds(t *testing.T) {
	// A NULL outer key produces NULL seek bounds; the probe must be skipped
	// (before the fix, lo=hi=NULL seeked the NULL-keyed inner row).
	join, err := inlFixture(t, []Row{{value.Null()}, {value.NewInt(1)}, {value.Null()}})
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, join)
	if len(rows) != 2 {
		t.Fatalf("NULL-bounded INL join rows = %d, want 2 (k=1 twice)", len(rows))
	}
	for _, r := range rows {
		if r[0].Int() != 1 || r[1].Int() != 1 {
			t.Fatalf("unexpected INL row %v", r)
		}
	}
}

func TestIndexNestedLoopJoinEmptyInputs(t *testing.T) {
	// Empty outer: no probes at all.
	join, err := inlFixture(t, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows := drain(t, join); len(rows) != 0 {
		t.Errorf("empty-outer INL join produced %d rows", len(rows))
	}
	// Outer keys that match no inner range.
	join2, err := inlFixture(t, []Row{{value.NewInt(100)}, {value.NewInt(-3)}})
	if err != nil {
		t.Fatal(err)
	}
	if rows := drain(t, join2); len(rows) != 0 {
		t.Errorf("no-match INL join produced %d rows", len(rows))
	}
}

func TestIndexNestedLoopJoinResidualRejectsAll(t *testing.T) {
	c := catalog.New(storage.NewPager(0), -1)
	inner, err := c.CreateTable("inner", []catalog.Column{
		{Name: "k", Kind: value.KindInt},
		{Name: "w", Kind: value.KindInt},
	}, []string{"k", "w"})
	if err != nil {
		t.Fatal(err)
	}
	if err := inner.BulkLoad([][]value.Value{
		{value.NewInt(1), value.NewInt(10)},
		{value.NewInt(2), value.NewInt(20)},
	}); err != nil {
		t.Fatal(err)
	}
	outer := NewValuesScan(intCols("k"), []Row{intRow(1), intRow(2)})
	spec := InnerSeekSpec{
		Table:   inner,
		LoExprs: []expr.Expr{expr.NewColumn(0, "k")},
		HiExprs: []expr.Expr{expr.NewColumn(0, "k")},
		LoIncl:  true, HiIncl: true,
	}
	never := expr.NewBinary(expr.OpLt, expr.NewColumn(2, "w"), expr.NewConst(value.NewInt(0)))
	join, err := NewIndexNestedLoopJoin(outer, spec, never)
	if err != nil {
		t.Fatal(err)
	}
	if rows := drain(t, join); len(rows) != 0 {
		t.Errorf("INL join with all-rejecting residual produced %d rows", len(rows))
	}
}

// TestHashJoinStringKeys covers the encoded-key path of both hash joins:
// single string keys build into the generic map and must match exactly.
func TestHashJoinStringKeys(t *testing.T) {
	cols := []ColumnInfo{{Name: "k", Kind: value.KindString}, {Name: "v", Kind: value.KindInt}}
	left := []Row{
		{value.NewString("a"), value.NewInt(1)},
		{value.NewString("b"), value.NewInt(2)},
		{value.Null(), value.NewInt(3)},
		{value.NewString("a"), value.NewInt(4)},
	}
	right := []Row{
		{value.NewString("a"), value.NewInt(10)},
		{value.Null(), value.NewInt(30)},
		{value.NewString("c"), value.NewInt(20)},
	}
	hj, err := NewHashJoin(NewValuesScan(cols, left), NewValuesScan(cols, right), []int{0}, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := drain(t, hj)
	if len(want) != 2 { // "a" twice on the left x once on the right
		t.Fatalf("string-key hash join rows = %d, want 2", len(want))
	}
	vj, err := NewVectorizedHashJoin(NewValuesScan(cols, left), NewValuesScan(cols, right), []int{0}, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := drainVec(t, vj)
	if g, w := formatJoinRows(got), formatJoinRows(want); g != w {
		t.Errorf("string-key joins disagree\nvectorized:\n%s\nrow:\n%s", g, w)
	}
}

// TestHashJoinLargeIntKeysExact pins exact int64 equality for hash joins: the
// typed key word passes through float64 and collapses ints beyond 2^53, so
// without the per-pair Compare re-check 2^53 and 2^53+1 would spuriously
// join. SQL '=' compares int-int pairs exactly; the joins must too.
func TestHashJoinLargeIntKeysExact(t *testing.T) {
	const big = int64(1) << 53 // 9007199254740992
	cols := []ColumnInfo{{Name: "k", Kind: value.KindInt}}
	left := []Row{intRow(big + 1), intRow(big), intRow(big + 3)}
	right := []Row{intRow(big), intRow(big + 2), intRow(big + 1)}
	check := func(name string, rows []Row) {
		t.Helper()
		if len(rows) != 2 {
			t.Fatalf("%s: large-int join rows = %d, want 2 (%v)", name, len(rows), rows)
		}
		for _, r := range rows {
			if r[0].Int() != r[1].Int() {
				t.Fatalf("%s: spurious large-int match %v = %v", name, r[0], r[1])
			}
		}
	}
	hj, err := NewHashJoin(NewValuesScan(cols, left), NewValuesScan(cols, right), []int{0}, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	check("row", drain(t, hj))
	vj, err := NewVectorizedHashJoin(NewValuesScan(cols, left), NewValuesScan(cols, right), []int{0}, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	check("vectorized", drainVec(t, vj))
	// Composite (encoded-key) path collapses the same way; re-check covers it.
	ccols := intCols("a", "b")
	cleft := []Row{{value.NewInt(big + 1), value.NewInt(1)}}
	cright := []Row{{value.NewInt(big), value.NewInt(1)}, {value.NewInt(big + 1), value.NewInt(1)}}
	cvj, err := NewVectorizedHashJoin(NewValuesScan(ccols, cleft), NewValuesScan(ccols, cright),
		[]int{0, 1}, []int{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	crows := drainVec(t, cvj)
	if len(crows) != 1 || crows[0][2].Int() != big+1 {
		t.Fatalf("composite large-int join rows = %v, want the single exact match", crows)
	}
	// Mixed int/float keys keep SQL's float comparison semantics: an int
	// beyond 2^53 equals the float it rounds to under value.Compare.
	fcols := []ColumnInfo{{Name: "k", Kind: value.KindFloat}}
	fright := []Row{{value.NewFloat(float64(big))}}
	mvj, err := NewVectorizedHashJoin(NewValuesScan(cols, []Row{intRow(big + 1)}), NewValuesScan(fcols, fright),
		[]int{0}, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mrows := drainVec(t, mvj)
	if len(mrows) != 1 {
		t.Fatalf("mixed int/float join rows = %d, want 1 (Compare is float-based across kinds)", len(mrows))
	}
}

// TestHashJoinNegativeZeroKeys: -0.0 and +0.0 are Compare-equal, so SQL '='
// joins them; the typed key word normalizes negative zero so hash joins agree
// with the merge join (before the fix both hash joins bucketed them apart and
// silently dropped the match).
func TestHashJoinNegativeZeroKeys(t *testing.T) {
	cols := []ColumnInfo{{Name: "k", Kind: value.KindFloat}}
	negZero := value.NewFloat(-1.0 * 0.0)
	left := []Row{{negZero}}
	right := []Row{{value.NewFloat(0.0)}}
	hj, err := NewHashJoin(NewValuesScan(cols, left), NewValuesScan(cols, right), []int{0}, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows := drain(t, hj); len(rows) != 1 {
		t.Errorf("row hash join: -0.0 = +0.0 produced %d rows, want 1", len(rows))
	}
	vj, err := NewVectorizedHashJoin(NewValuesScan(cols, left), NewValuesScan(cols, right), []int{0}, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows := drainVec(t, vj); len(rows) != 1 {
		t.Errorf("vectorized hash join: -0.0 = +0.0 produced %d rows, want 1", len(rows))
	}
	mj, err := NewMergeJoin(NewValuesScan(cols, left), NewValuesScan(cols, right), []int{0}, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows := drain(t, mj); len(rows) != 1 {
		t.Errorf("merge join oracle: -0.0 = +0.0 produced %d rows, want 1", len(rows))
	}
}
