package exec

import (
	"context"
	"sort"

	"oldelephant/internal/expr"
	"oldelephant/internal/value"
)

// Filter passes through rows for which the predicate evaluates to true. In
// batch mode it never copies surviving rows: it narrows each input batch's
// selection vector through the vectorized predicate kernels.
type Filter struct {
	Input Operator
	Pred  expr.Expr

	binput BatchOperator
}

// NewFilter wraps an operator with a predicate.
func NewFilter(input Operator, pred expr.Expr) *Filter {
	return &Filter{Input: input, Pred: pred}
}

// Schema implements Operator.
func (f *Filter) Schema() []ColumnInfo { return f.Input.Schema() }

// Open implements Operator.
func (f *Filter) Open() error {
	f.binput = AsBatchOperator(f.Input)
	return f.Input.Open()
}

// Next implements Operator.
func (f *Filter) Next() (Row, bool, error) {
	for {
		row, ok, err := f.Input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		pass, err := expr.EvalBool(f.Pred, row)
		if err != nil {
			return nil, false, err
		}
		if pass {
			return row, true, nil
		}
	}
}

// NextBatch implements BatchOperator.
func (f *Filter) NextBatch() (*Batch, bool, error) {
	if f.binput == nil {
		return nil, false, errNotOpen("Filter")
	}
	for {
		b, ok, err := f.binput.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		sel, err := expr.SelectVector(f.Pred, b.Cols, b.Sel, b.physRows())
		if err != nil {
			return nil, false, err
		}
		if len(sel) == 0 {
			continue
		}
		b.Sel = sel
		return b, true, nil
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.Input.Close() }

// Project computes a list of expressions over each input row. In batch mode
// every expression is evaluated over whole vectors; plain column references
// pass the input vector through without copying.
type Project struct {
	Input Operator
	Exprs []expr.Expr
	Names []string

	schema []ColumnInfo
	binput BatchOperator
}

// NewProject builds a projection; names label the output columns.
func NewProject(input Operator, exprs []expr.Expr, names []string) *Project {
	schema := make([]ColumnInfo, len(exprs))
	inSchema := input.Schema()
	for i, e := range exprs {
		name := ""
		if i < len(names) {
			name = names[i]
		}
		kind := value.KindNull
		if col, ok := e.(*expr.Column); ok && col.Index < len(inSchema) {
			kind = inSchema[col.Index].Kind
			if name == "" {
				name = inSchema[col.Index].Name
			}
		}
		schema[i] = ColumnInfo{Name: name, Kind: kind}
	}
	return &Project{Input: input, Exprs: exprs, Names: names, schema: schema}
}

// Schema implements Operator.
func (p *Project) Schema() []ColumnInfo { return p.schema }

// Open implements Operator.
func (p *Project) Open() error {
	p.binput = AsBatchOperator(p.Input)
	return p.Input.Open()
}

// Next implements Operator.
func (p *Project) Next() (Row, bool, error) {
	row, ok, err := p.Input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(Row, len(p.Exprs))
	for i, e := range p.Exprs {
		v, err := e.Eval(row)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return out, true, nil
}

// NextBatch implements BatchOperator.
func (p *Project) NextBatch() (*Batch, bool, error) {
	if p.binput == nil {
		return nil, false, errNotOpen("Project")
	}
	b, ok, err := p.binput.NextBatch()
	if err != nil || !ok {
		return nil, false, err
	}
	vecs, err := evalProjectionVectors(p.Exprs, b)
	if err != nil {
		return nil, false, err
	}
	return projectedBatch(vecs, b), true, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.Input.Close() }

// Limit stops after emitting N rows (and skips Offset rows first).
type Limit struct {
	Input  Operator
	N      int64
	Offset int64

	emitted int64
	skipped int64
	binput  BatchOperator
}

// NewLimit wraps an operator with LIMIT/OFFSET semantics. n < 0 means no limit.
func NewLimit(input Operator, n, offset int64) *Limit {
	return &Limit{Input: input, N: n, Offset: offset}
}

// Schema implements Operator.
func (l *Limit) Schema() []ColumnInfo { return l.Input.Schema() }

// Open implements Operator.
func (l *Limit) Open() error {
	l.emitted, l.skipped = 0, 0
	l.binput = AsBatchOperator(l.Input)
	return l.Input.Open()
}

// Next implements Operator.
func (l *Limit) Next() (Row, bool, error) {
	for {
		if l.N >= 0 && l.emitted >= l.N {
			return nil, false, nil
		}
		row, ok, err := l.Input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if l.skipped < l.Offset {
			l.skipped++
			continue
		}
		l.emitted++
		return row, true, nil
	}
}

// NextBatch implements BatchOperator.
func (l *Limit) NextBatch() (*Batch, bool, error) {
	if l.binput == nil {
		return nil, false, errNotOpen("Limit")
	}
	for {
		if l.N >= 0 && l.emitted >= l.N {
			return nil, false, nil
		}
		b, ok, err := l.binput.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		n := b.NumRows()
		start := 0
		if l.skipped < l.Offset {
			need := l.Offset - l.skipped
			if int64(n) <= need {
				l.skipped += int64(n)
				continue
			}
			l.skipped += need
			start = int(need)
		}
		end := n
		if l.N >= 0 {
			if remaining := l.N - l.emitted; int64(end-start) > remaining {
				end = start + int(remaining)
			}
		}
		l.emitted += int64(end - start)
		if start == 0 && end == n {
			return b, true, nil
		}
		sel := make([]int, 0, end-start)
		for i := start; i < end; i++ {
			sel = append(sel, b.PhysIdx(i))
		}
		b.Sel = sel
		return b, true, nil
	}
}

// Close implements Operator.
func (l *Limit) Close() error { return l.Input.Close() }

// SortKey describes one ORDER BY term over the input schema.
type SortKey struct {
	Col  int
	Desc bool
}

// Sort materializes its input and emits it ordered by the sort keys. The
// materialization is deferred to the first Next/NextBatch call so that it can
// drain its input through whichever pull protocol the parent is using.
type Sort struct {
	Input Operator
	Keys  []SortKey

	rows   []Row
	pos    int
	sorted bool
	binput BatchOperator
	// ctx, when set by ApplyContext after Open, is checked inside the
	// materialization drain so cancellation is observed mid-sort, not only
	// after the whole input is consumed. Open clears it: a cache-leased plan
	// drained without a context must not see the previous execution's.
	ctx context.Context
}

// NewSort builds an in-memory sort.
func NewSort(input Operator, keys []SortKey) *Sort {
	return &Sort{Input: input, Keys: keys}
}

// Schema implements Operator.
func (s *Sort) Schema() []ColumnInfo { return s.Input.Schema() }

// Open implements Operator.
func (s *Sort) Open() error {
	s.rows = nil
	s.pos = 0
	s.sorted = false
	s.binput = AsBatchOperator(s.Input)
	s.ctx = nil
	return s.Input.Open()
}

// materialize drains the input (batch-wise when the parent pulls batches) and
// sorts the collected rows, checking the applied context once per batch of
// drained input.
func (s *Sort) materialize(batchWise bool) error {
	if batchWise {
		for {
			if err := ctxErr(s.ctx); err != nil {
				return err
			}
			b, ok, err := s.binput.NextBatch()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			s.rows = b.AppendRows(s.rows)
		}
	} else {
		for n := 0; ; n++ {
			if n%DefaultBatchSize == 0 {
				if err := ctxErr(s.ctx); err != nil {
					return err
				}
			}
			row, ok, err := s.Input.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			s.rows = append(s.rows, row)
		}
	}
	stableSortRows(s.rows, s.Keys)
	s.sorted = true
	return nil
}

// stableSortRows stable-sorts rows in place by the sort keys (shared by Sort
// and the per-morsel runs of ParallelSort, so both apply identical ordering).
func stableSortRows(rows []Row, keys []SortKey) {
	sort.SliceStable(rows, func(i, j int) bool {
		return compareRows(rows[i], rows[j], keys) < 0
	})
}

func compareRows(a, b Row, keys []SortKey) int {
	for _, k := range keys {
		cmp := value.Compare(a[k.Col], b[k.Col])
		if cmp == 0 {
			continue
		}
		if k.Desc {
			return -cmp
		}
		return cmp
	}
	return 0
}

// Next implements Operator.
func (s *Sort) Next() (Row, bool, error) {
	if !s.sorted {
		if err := s.materialize(false); err != nil {
			return nil, false, err
		}
	}
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, true, nil
}

// NextBatch implements BatchOperator.
func (s *Sort) NextBatch() (*Batch, bool, error) {
	if s.binput == nil {
		return nil, false, errNotOpen("Sort")
	}
	if !s.sorted {
		if err := s.materialize(true); err != nil {
			return nil, false, err
		}
	}
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	return batchFromRows(s.rows, &s.pos, len(s.Schema())), true, nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	s.rows = nil
	s.sorted = false
	return s.Input.Close()
}
