package exec

import (
	"sort"

	"oldelephant/internal/expr"
	"oldelephant/internal/value"
)

// Filter passes through rows for which the predicate evaluates to true.
type Filter struct {
	Input Operator
	Pred  expr.Expr
}

// NewFilter wraps an operator with a predicate.
func NewFilter(input Operator, pred expr.Expr) *Filter {
	return &Filter{Input: input, Pred: pred}
}

// Schema implements Operator.
func (f *Filter) Schema() []ColumnInfo { return f.Input.Schema() }

// Open implements Operator.
func (f *Filter) Open() error { return f.Input.Open() }

// Next implements Operator.
func (f *Filter) Next() (Row, bool, error) {
	for {
		row, ok, err := f.Input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		pass, err := expr.EvalBool(f.Pred, row)
		if err != nil {
			return nil, false, err
		}
		if pass {
			return row, true, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.Input.Close() }

// Project computes a list of expressions over each input row.
type Project struct {
	Input Operator
	Exprs []expr.Expr
	Names []string

	schema []ColumnInfo
}

// NewProject builds a projection; names label the output columns.
func NewProject(input Operator, exprs []expr.Expr, names []string) *Project {
	schema := make([]ColumnInfo, len(exprs))
	inSchema := input.Schema()
	for i, e := range exprs {
		name := ""
		if i < len(names) {
			name = names[i]
		}
		kind := value.KindNull
		if col, ok := e.(*expr.Column); ok && col.Index < len(inSchema) {
			kind = inSchema[col.Index].Kind
			if name == "" {
				name = inSchema[col.Index].Name
			}
		}
		schema[i] = ColumnInfo{Name: name, Kind: kind}
	}
	return &Project{Input: input, Exprs: exprs, Names: names, schema: schema}
}

// Schema implements Operator.
func (p *Project) Schema() []ColumnInfo { return p.schema }

// Open implements Operator.
func (p *Project) Open() error { return p.Input.Open() }

// Next implements Operator.
func (p *Project) Next() (Row, bool, error) {
	row, ok, err := p.Input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(Row, len(p.Exprs))
	for i, e := range p.Exprs {
		v, err := e.Eval(row)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return out, true, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.Input.Close() }

// Limit stops after emitting N rows (and skips Offset rows first).
type Limit struct {
	Input  Operator
	N      int64
	Offset int64

	emitted int64
	skipped int64
}

// NewLimit wraps an operator with LIMIT/OFFSET semantics. n < 0 means no limit.
func NewLimit(input Operator, n, offset int64) *Limit {
	return &Limit{Input: input, N: n, Offset: offset}
}

// Schema implements Operator.
func (l *Limit) Schema() []ColumnInfo { return l.Input.Schema() }

// Open implements Operator.
func (l *Limit) Open() error {
	l.emitted, l.skipped = 0, 0
	return l.Input.Open()
}

// Next implements Operator.
func (l *Limit) Next() (Row, bool, error) {
	for {
		if l.N >= 0 && l.emitted >= l.N {
			return nil, false, nil
		}
		row, ok, err := l.Input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if l.skipped < l.Offset {
			l.skipped++
			continue
		}
		l.emitted++
		return row, true, nil
	}
}

// Close implements Operator.
func (l *Limit) Close() error { return l.Input.Close() }

// SortKey describes one ORDER BY term over the input schema.
type SortKey struct {
	Col  int
	Desc bool
}

// Sort materializes its input and emits it ordered by the sort keys.
type Sort struct {
	Input Operator
	Keys  []SortKey

	rows []Row
	pos  int
}

// NewSort builds an in-memory sort.
func NewSort(input Operator, keys []SortKey) *Sort {
	return &Sort{Input: input, Keys: keys}
}

// Schema implements Operator.
func (s *Sort) Schema() []ColumnInfo { return s.Input.Schema() }

// Open implements Operator.
func (s *Sort) Open() error {
	if err := s.Input.Open(); err != nil {
		return err
	}
	s.rows = nil
	s.pos = 0
	for {
		row, ok, err := s.Input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		s.rows = append(s.rows, row)
	}
	sort.SliceStable(s.rows, func(i, j int) bool {
		return compareRows(s.rows[i], s.rows[j], s.Keys) < 0
	})
	return nil
}

func compareRows(a, b Row, keys []SortKey) int {
	for _, k := range keys {
		cmp := value.Compare(a[k.Col], b[k.Col])
		if cmp == 0 {
			continue
		}
		if k.Desc {
			return -cmp
		}
		return cmp
	}
	return 0
}

// Next implements Operator.
func (s *Sort) Next() (Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, true, nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	s.rows = nil
	return s.Input.Close()
}
