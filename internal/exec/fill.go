package exec

import (
	"oldelephant/internal/catalog"
	"oldelephant/internal/value"
	"oldelephant/internal/vector"
)

// colFiller is the projection-aware, column-at-a-time batch fill behind every
// table access path. Instead of decoding whole rows and transposing them into
// columns, it walks each stored tuple exactly once: unrequested fields are
// varint-skipped and each projected field is decoded in place during the walk
// (TupleWalker.DecodeField — the fused single-parse form of the typed span
// decoders in internal/value), appending straight into the column buffers
// that become the batch's vectors. When every projected column is a
// clustered-key column (and the table's keys are recoverable), values come
// from the B+-tree key bytes and the payload is never touched at all.
//
// The column buffers are a per-operator arena: a filler owned by a serial
// scan operator survives Open/Close, so a plan-cache lease's later executions
// reuse fully-grown buffers instead of re-paying the 32→1024 growth ramp.
// Recycling is only legal under the batch protocol's retention contract
// (parents must not hold a batch's columns after the following NextBatch), so
// morsel fillers — whose batches cross goroutines through drainPipe — run
// with recycle off and allocate fresh value buffers per batch. Span arenas
// never escape the filler and are always reused.
type colFiller struct {
	// kinds[i] is the declared kind of output column i, selecting its typed
	// decoder. fields maps tuple positions to output columns, sorted by
	// position so one forward walk per tuple collects every projected span.
	kinds  []value.Kind
	fields []fillField

	// keyDec decodes all output columns from clustered-key bytes; nil means
	// payload decode. keyCols is the base-ordinal set the decoder was built
	// for; prepareKey revalidates against the table on each Open, since one
	// unrecoverable insert permanently disables key recovery.
	keyDec  *catalog.KeyPrefixDecoder
	keyCols []int

	recycle bool
	bufs    [][]value.Value
	rowBuf  []value.Value

	// Raw-span staging for fillRows: one NextRawSpans call per batch instead
	// of one NextRaw call per row. The spans alias page memory and are
	// consumed before the batch is published.
	keySpans [][]byte
	paySpans [][]byte

	// String decode state. Every declared-string output column starts in
	// dictionary mode: values intern into a persistent per-column dictionary
	// and the column fills a code buffer instead of a value buffer, so
	// low-cardinality columns publish vector.Dict directly and downstream
	// kernels ride the dictionary fast paths. A column whose distinct count
	// crosses dictMaxDistinct abandons dictionary mode permanently (replaying
	// the current batch's codes) and falls back to the shared byte arena:
	// string contents stage into one recycled buffer, the hot loop appends
	// only a packed 8-byte span per value (no Value write, no write
	// barrier), and wrap pays the batch's single string allocation (Seal)
	// before materializing the column in one pass. strOuts lists the string
	// output columns so wrap touches no others.
	arena   value.StringArena
	strOuts []int
	dicts   []*dictState
	codes   [][]uint32
	spans   [][]uint64
	mixed   [][]value.Value
	spanTmp [1][]byte
}

// dictMaxDistinct is the per-column distinct-value budget of dictionary-mode
// string fill. Past it a dictionary stops paying for itself (the map grows,
// codes stop compressing), so the column switches to arena decode for good.
const dictMaxDistinct = 256

// Sentinel span entries for arena-mode string columns. Real packed spans are
// start<<32|len with start < 2^31, so bit 63 is never set by Stage.
const (
	spanNull  = uint64(1) << 63   // a NULL value
	spanMixed = uint64(1)<<63 | 1 // the next value of the column's mixed side list
)

// dictProbeMax is the dictionary size up to which code lookup linearly probes
// the raw key bytes instead of hashing into the interning map. The lowest-
// cardinality columns (status flags, enums — exactly the columns dictionary
// fill exists for) resolve in a handful of short memequals, cheaper than one
// map hash per row.
const dictProbeMax = 8

// dictState is the persistent dictionary of one string output column: the
// interning map and the dictionary values, shared (read-only up to the
// published length) by every Dict vector the column has emitted. Interned
// strings are deep copies, so they outlive pages, batches, and the filler.
// keys runs parallel to vals, holding each string entry's bytes for the
// linear-probe fast path; the NULL entry's key is nil (always non-nil for
// strings — interning allocates through make — so the nil check cannot
// mistake a real empty string for NULL).
type dictState struct {
	codeOf   map[string]uint32
	keys     [][]byte
	vals     []value.Value
	nullCode int32 // code of the interned NULL entry, -1 until first NULL
}

// lookup returns the code of body's interned entry, probing linearly while
// the dictionary is small and hashing once it is not.
func (d *dictState) lookup(body []byte) (uint32, bool) {
	if len(d.keys) <= dictProbeMax {
		for c := range d.keys {
			if d.keys[c] != nil && string(d.keys[c]) == string(body) { // alloc-free compare
				return uint32(c), true
			}
		}
		return 0, false
	}
	code, ok := d.codeOf[string(body)]
	return code, ok
}

// intern adds body's string to the dictionary and returns its new code.
func (d *dictState) intern(body []byte) uint32 {
	k := make([]byte, len(body))
	copy(k, body)
	code := uint32(len(d.vals))
	s := string(k)
	d.vals = append(d.vals, value.NewString(s))
	d.keys = append(d.keys, k)
	d.codeOf[s] = code
	return code
}

// internNull adds the NULL entry (once) and returns its code.
func (d *dictState) internNull() uint32 {
	if d.nullCode < 0 {
		d.nullCode = int32(len(d.vals))
		d.vals = append(d.vals, value.Null())
		d.keys = append(d.keys, nil)
	}
	return uint32(d.nullCode)
}

// fillField maps one projected tuple position to its output column.
type fillField struct {
	pos, out int
}

// newColFiller builds a filler producing len(kinds) output columns, where
// output column i decodes the tuple field at positions[i].
func newColFiller(kinds []value.Kind, positions []int, recycle bool) *colFiller {
	f := &colFiller{
		kinds:   kinds,
		fields:  make([]fillField, len(positions)),
		recycle: recycle,
		rowBuf:  make([]value.Value, len(positions)),
	}
	for i, pos := range positions {
		f.fields[i] = fillField{pos: pos, out: i}
	}
	f.dicts = make([]*dictState, len(kinds))
	f.codes = make([][]uint32, len(kinds))
	f.spans = make([][]uint64, len(kinds))
	f.mixed = make([][]value.Value, len(kinds))
	for i, k := range kinds {
		if k == value.KindString {
			f.strOuts = append(f.strOuts, i)
			f.dicts[i] = &dictState{codeOf: make(map[string]uint32), nullCode: -1}
		}
	}
	// Insertion sort by tuple position (column sets are small); secondary
	// index entries can permute projected ordinals relative to storage order.
	for i := 1; i < len(f.fields); i++ {
		for j := i; j > 0 && f.fields[j].pos < f.fields[j-1].pos; j-- {
			f.fields[j], f.fields[j-1] = f.fields[j-1], f.fields[j]
		}
	}
	return f
}

// prepareKey enables or disables clustered-key recovery for a scan of t
// producing the base ordinals in cols. Called at Open so a table that went
// key-dirty since the last execution drops back to payload decode; the
// decoder is kept across executions while it stays valid.
func (f *colFiller) prepareKey(t *catalog.Table, cols []int) {
	if !t.KeyRecoverable() {
		f.keyDec = nil
		f.keyCols = nil
		return
	}
	if f.keyDec != nil && sameOrdinals(f.keyCols, cols) {
		return
	}
	f.keyDec, _ = t.NewKeyPrefixDecoder(cols)
	if f.keyDec != nil {
		f.keyCols = append(f.keyCols[:0], cols...)
	}
}

func sameOrdinals(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// clampCap bounds a fill-capacity hint to the batch sizing policy.
func clampCap(capHint int) int {
	if capHint <= 0 {
		return initialBatchCap
	}
	if capHint > DefaultBatchSize {
		return DefaultBatchSize
	}
	return capHint
}

// resetBufs readies the column buffers for one fill: recycle mode truncates
// the arena in place (legal under the batch retention contract), morsel mode
// allocates fresh buffers the downstream pipe may hold indefinitely.
func (f *colFiller) resetBufs(capHint int) {
	if f.recycle && f.bufs != nil {
		for i := range f.bufs {
			f.bufs[i] = f.bufs[i][:0]
		}
		for i := range f.codes {
			f.codes[i] = f.codes[i][:0]
		}
	} else {
		f.bufs = make([][]value.Value, len(f.kinds))
		for i := range f.bufs {
			f.bufs[i] = make([]value.Value, 0, capHint)
		}
		for i := range f.codes {
			if f.dicts[i] != nil {
				f.codes[i] = make([]uint32, 0, capHint)
			}
		}
	}
	// The staging buffer, span lists, and mixed side lists are filler-private
	// and never escape (Seal's string and the materialized values do), so
	// they recycle even in morsel mode.
	for _, out := range f.strOuts {
		f.spans[out] = f.spans[out][:0]
		f.mixed[out] = f.mixed[out][:0]
	}
	f.arena.Reset()
}

// decodeRow walks one encoded tuple, skipping the gaps between projected
// fields and decoding each projected field directly into its column buffer
// with a single parse. Fields past the tuple's end append NULL. String
// columns route through fillString (dictionary or arena decode); everything
// else decodes in place.
func (f *colFiller) decodeRow(payload []byte) error {
	var w value.TupleWalker
	if err := w.Reset(payload); err != nil {
		return err
	}
	n := w.NumFields()
	prev := 0
	var v value.Value
	for _, fd := range f.fields {
		if f.kinds[fd.out] == value.KindString {
			var body, sp []byte
			var isStr bool
			if fd.pos < n {
				if fd.pos > prev {
					if err := w.Skip(fd.pos - prev); err != nil {
						return err
					}
				}
				var err error
				if body, isStr, sp, err = w.StringBody(); err != nil {
					return err
				}
				prev = fd.pos + 1
			}
			if err := f.fillString(fd.out, body, isStr, sp); err != nil {
				return err
			}
			continue
		}
		if fd.pos >= n {
			f.bufs[fd.out] = append(f.bufs[fd.out], value.Value{})
			continue
		}
		if fd.pos > prev {
			if err := w.Skip(fd.pos - prev); err != nil {
				return err
			}
		}
		if err := w.DecodeField(&v); err != nil {
			return err
		}
		f.bufs[fd.out] = append(f.bufs[fd.out], v)
		prev = fd.pos + 1
	}
	return nil
}

// fillString appends one string-column value from a walked field: body is the
// string contents when isStr, sp the raw span otherwise (nil = NULL, for
// past-end fields). Dictionary mode interns the contents and appends a code;
// arena mode stages the contents and appends a placeholder the wrap resolves
// after Seal. Non-string, non-NULL kinds abandon dictionary mode and decode
// generically.
func (f *colFiller) fillString(out int, body []byte, isStr bool, sp []byte) error {
	if d := f.dicts[out]; d != nil {
		switch {
		case isStr:
			code, ok := d.lookup(body)
			if !ok {
				if len(d.vals) >= dictMaxDistinct {
					f.abandonDict(out)
					break // fall through to the arena path
				}
				code = d.intern(body)
			}
			f.codes[out] = append(f.codes[out], code)
			return nil
		case len(sp) == 0 || value.Kind(sp[0]) == value.KindNull:
			f.codes[out] = append(f.codes[out], d.internNull())
			return nil
		default:
			// A non-string kind stored in a declared-string column: the
			// interning map cannot key it, so the column leaves dictionary
			// mode for good and decodes generically below.
			f.abandonDict(out)
		}
	}
	if isStr {
		f.spans[out] = append(f.spans[out], f.arena.StagePacked(body))
		return nil
	}
	if len(sp) == 0 {
		f.spans[out] = append(f.spans[out], spanNull)
		return nil
	}
	f.spanTmp[0] = sp
	var err error
	f.mixed[out], err = value.DecodeFieldSpans(f.mixed[out], f.spanTmp[:])
	f.spans[out] = append(f.spans[out], spanMixed)
	return err
}

// abandonDict permanently switches a string column out of dictionary mode,
// replaying the current batch's codes as plain values into the column's
// value buffer. Interned dictionary strings are deep copies, so sharing them
// is safe. The replayed prefix stays in bufs; every later value of the batch
// arrives through the span list, and wrap concatenates prefix then spans.
func (f *colFiller) abandonDict(out int) {
	d := f.dicts[out]
	f.dicts[out] = nil
	for _, c := range f.codes[out] {
		f.bufs[out] = append(f.bufs[out], d.vals[c])
	}
	f.codes[out] = nil
}

// wrap publishes the filled column buffers as a batch and run-encodes the
// marked columns. String columns still in dictionary mode publish Dict
// vectors sharing the persistent dictionary; arena-staged columns pay the
// batch's one string allocation (Seal) and materialize their packed span
// lists into values in a single pass.
func (f *colFiller) wrap(n int, encode []int) *Batch {
	f.arena.Seal()
	for _, out := range f.strOuts {
		spans := f.spans[out]
		if len(spans) == 0 {
			continue
		}
		sealed := f.arena.Sealed()
		vals := f.bufs[out] // abandonment-replay prefix, usually empty
		mi := 0
		for _, p := range spans {
			switch {
			case p < spanNull:
				start := int(p >> 32)
				vals = append(vals, value.Value{Kind: value.KindString, S: sealed[start : start+int(p&0xFFFFFFFF)]})
			case p == spanNull:
				vals = append(vals, value.Value{})
			default:
				vals = append(vals, f.mixed[out][mi])
				mi++
			}
		}
		f.bufs[out] = vals
	}
	b := &Batch{Cols: make([]*vector.Vector, len(f.bufs)), n: n}
	for i := range f.bufs {
		// A dictionary-mode column filled codes for every row of this batch
		// and nothing into its value buffer; any other shape (key recovery
		// fills value buffers directly, abandonment mid-batch clears codes)
		// publishes flat.
		if d := f.dicts[i]; d != nil && len(f.codes[i]) == n && len(f.bufs[i]) == 0 {
			b.Cols[i] = vector.NewDict(d.vals, f.codes[i])
		} else {
			b.Cols[i] = vector.NewFlat(f.bufs[i])
		}
	}
	compressBatchCols(b, encode)
	return b
}

// fillRows pulls up to DefaultBatchSize rows from a row iterator into a
// column-major batch. A nil batch means the iterator is exhausted.
func (f *colFiller) fillRows(it *catalog.RowIterator, capHint int, encode []int) (*Batch, error) {
	f.resetBufs(clampCap(capHint))
	if f.paySpans == nil {
		f.paySpans = make([][]byte, DefaultBatchSize)
	}
	var n int
	if f.keyDec != nil {
		// Key-only projection: decode straight from the B+-tree key bytes.
		if f.keySpans == nil {
			f.keySpans = make([][]byte, DefaultBatchSize)
		}
		n = it.NextRawSpans(f.keySpans, f.paySpans)
		row := f.rowBuf
		for _, key := range f.keySpans[:n] {
			if err := f.keyDec.Decode(key, row); err != nil {
				return nil, err
			}
			for i, v := range row {
				f.bufs[i] = append(f.bufs[i], v)
			}
		}
	} else {
		n = it.NextRawSpans(nil, f.paySpans)
		for _, payload := range f.paySpans[:n] {
			if err := f.decodeRow(payload); err != nil {
				return nil, err
			}
		}
	}
	if n == 0 {
		// Distinguish exhaustion from a page error mid-scan (corrupt tree):
		// the latter must fail the query, not end it early.
		if err := it.Err(); err != nil {
			return nil, err
		}
		return nil, nil
	}
	return f.wrap(n, encode), nil
}

// fillEntries is fillRows over covered secondary-index entries: the projected
// columns decode from entry payloads (key columns, included columns, locator
// columns), whose positions were mapped at construction.
func (f *colFiller) fillEntries(it *catalog.IndexIterator, capHint int, encode []int) (*Batch, error) {
	f.resetBufs(clampCap(capHint))
	n := 0
	for n < DefaultBatchSize {
		payload, ok := it.NextRaw()
		if !ok {
			break
		}
		if err := f.decodeRow(payload); err != nil {
			return nil, err
		}
		n++
	}
	if n == 0 {
		if err := it.Err(); err != nil {
			return nil, err
		}
		return nil, nil
	}
	return f.wrap(n, encode), nil
}
