package exec

import (
	"oldelephant/internal/catalog"
	"oldelephant/internal/value"
	"oldelephant/internal/vector"
)

// colFiller is the projection-aware, column-at-a-time batch fill behind every
// table access path. Instead of decoding whole rows and transposing them into
// columns, it walks each stored tuple exactly once: unrequested fields are
// varint-skipped and each projected field is decoded in place during the walk
// (TupleWalker.DecodeField — the fused single-parse form of the typed span
// decoders in internal/value), appending straight into the column buffers
// that become the batch's vectors. When every projected column is a
// clustered-key column (and the table's keys are recoverable), values come
// from the B+-tree key bytes and the payload is never touched at all.
//
// The column buffers are a per-operator arena: a filler owned by a serial
// scan operator survives Open/Close, so a plan-cache lease's later executions
// reuse fully-grown buffers instead of re-paying the 32→1024 growth ramp.
// Recycling is only legal under the batch protocol's retention contract
// (parents must not hold a batch's columns after the following NextBatch), so
// morsel fillers — whose batches cross goroutines through drainPipe — run
// with recycle off and allocate fresh value buffers per batch. Span arenas
// never escape the filler and are always reused.
type colFiller struct {
	// kinds[i] is the declared kind of output column i, selecting its typed
	// decoder. fields maps tuple positions to output columns, sorted by
	// position so one forward walk per tuple collects every projected span.
	kinds  []value.Kind
	fields []fillField

	// keyDec decodes all output columns from clustered-key bytes; nil means
	// payload decode. keyCols is the base-ordinal set the decoder was built
	// for; prepareKey revalidates against the table on each Open, since one
	// unrecoverable insert permanently disables key recovery.
	keyDec  *catalog.KeyPrefixDecoder
	keyCols []int

	recycle bool
	bufs    [][]value.Value
	rowBuf  []value.Value
}

// fillField maps one projected tuple position to its output column.
type fillField struct {
	pos, out int
}

// newColFiller builds a filler producing len(kinds) output columns, where
// output column i decodes the tuple field at positions[i].
func newColFiller(kinds []value.Kind, positions []int, recycle bool) *colFiller {
	f := &colFiller{
		kinds:   kinds,
		fields:  make([]fillField, len(positions)),
		recycle: recycle,
		rowBuf:  make([]value.Value, len(positions)),
	}
	for i, pos := range positions {
		f.fields[i] = fillField{pos: pos, out: i}
	}
	// Insertion sort by tuple position (column sets are small); secondary
	// index entries can permute projected ordinals relative to storage order.
	for i := 1; i < len(f.fields); i++ {
		for j := i; j > 0 && f.fields[j].pos < f.fields[j-1].pos; j-- {
			f.fields[j], f.fields[j-1] = f.fields[j-1], f.fields[j]
		}
	}
	return f
}

// prepareKey enables or disables clustered-key recovery for a scan of t
// producing the base ordinals in cols. Called at Open so a table that went
// key-dirty since the last execution drops back to payload decode; the
// decoder is kept across executions while it stays valid.
func (f *colFiller) prepareKey(t *catalog.Table, cols []int) {
	if !t.KeyRecoverable() {
		f.keyDec = nil
		f.keyCols = nil
		return
	}
	if f.keyDec != nil && sameOrdinals(f.keyCols, cols) {
		return
	}
	f.keyDec, _ = t.NewKeyPrefixDecoder(cols)
	if f.keyDec != nil {
		f.keyCols = append(f.keyCols[:0], cols...)
	}
}

func sameOrdinals(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// clampCap bounds a fill-capacity hint to the batch sizing policy.
func clampCap(capHint int) int {
	if capHint <= 0 {
		return initialBatchCap
	}
	if capHint > DefaultBatchSize {
		return DefaultBatchSize
	}
	return capHint
}

// resetBufs readies the column buffers for one fill: recycle mode truncates
// the arena in place (legal under the batch retention contract), morsel mode
// allocates fresh buffers the downstream pipe may hold indefinitely.
func (f *colFiller) resetBufs(capHint int) {
	if f.recycle && f.bufs != nil {
		for i := range f.bufs {
			f.bufs[i] = f.bufs[i][:0]
		}
	} else {
		f.bufs = make([][]value.Value, len(f.kinds))
		for i := range f.bufs {
			f.bufs[i] = make([]value.Value, 0, capHint)
		}
	}
}

// decodeRow walks one encoded tuple, skipping the gaps between projected
// fields and decoding each projected field directly into its column buffer
// with a single parse. Fields past the tuple's end append NULL.
func (f *colFiller) decodeRow(payload []byte) error {
	var w value.TupleWalker
	if err := w.Reset(payload); err != nil {
		return err
	}
	n := w.NumFields()
	prev := 0
	var v value.Value
	for _, fd := range f.fields {
		if fd.pos >= n {
			f.bufs[fd.out] = append(f.bufs[fd.out], value.Value{})
			continue
		}
		if fd.pos > prev {
			if err := w.Skip(fd.pos - prev); err != nil {
				return err
			}
		}
		if err := w.DecodeField(&v); err != nil {
			return err
		}
		f.bufs[fd.out] = append(f.bufs[fd.out], v)
		prev = fd.pos + 1
	}
	return nil
}

// wrap publishes the filled column buffers as a batch and run-encodes the
// marked columns.
func (f *colFiller) wrap(n int, encode []int) *Batch {
	b := &Batch{Cols: make([]*vector.Vector, len(f.bufs)), n: n}
	for i := range f.bufs {
		b.Cols[i] = vector.NewFlat(f.bufs[i])
	}
	compressBatchCols(b, encode)
	return b
}

// fillRows pulls up to DefaultBatchSize rows from a row iterator into a
// column-major batch. A nil batch means the iterator is exhausted.
func (f *colFiller) fillRows(it *catalog.RowIterator, capHint int, encode []int) (*Batch, error) {
	f.resetBufs(clampCap(capHint))
	n := 0
	if f.keyDec != nil {
		// Key-only projection: decode straight from the B+-tree key bytes.
		row := f.rowBuf
		for n < DefaultBatchSize {
			key, _, ok := it.NextRaw()
			if !ok {
				break
			}
			if err := f.keyDec.Decode(key, row); err != nil {
				return nil, err
			}
			for i, v := range row {
				f.bufs[i] = append(f.bufs[i], v)
			}
			n++
		}
	} else {
		for n < DefaultBatchSize {
			_, payload, ok := it.NextRaw()
			if !ok {
				break
			}
			if err := f.decodeRow(payload); err != nil {
				return nil, err
			}
			n++
		}
	}
	if n == 0 {
		return nil, nil
	}
	return f.wrap(n, encode), nil
}

// fillEntries is fillRows over covered secondary-index entries: the projected
// columns decode from entry payloads (key columns, included columns, locator
// columns), whose positions were mapped at construction.
func (f *colFiller) fillEntries(it *catalog.IndexIterator, capHint int, encode []int) (*Batch, error) {
	f.resetBufs(clampCap(capHint))
	n := 0
	for n < DefaultBatchSize {
		payload, ok := it.NextRaw()
		if !ok {
			break
		}
		if err := f.decodeRow(payload); err != nil {
			return nil, err
		}
		n++
	}
	if n == 0 {
		return nil, nil
	}
	return f.wrap(n, encode), nil
}
