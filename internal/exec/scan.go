package exec

import (
	"fmt"

	"oldelephant/internal/catalog"
	"oldelephant/internal/value"
	"oldelephant/internal/vector"
)

// projectedSchema builds the output schema for a table access that returns
// the given base-table column ordinals.
func projectedSchema(t *catalog.Table, cols []int) []ColumnInfo {
	out := make([]ColumnInfo, len(cols))
	for i, ord := range cols {
		out[i] = ColumnInfo{Name: t.Columns[ord].Name, Kind: t.Columns[ord].Kind}
	}
	return out
}

// projectRow picks the given base-table ordinals out of a full row.
func projectRow(row Row, cols []int) Row {
	out := make(Row, len(cols))
	for i, ord := range cols {
		out[i] = row[ord]
	}
	return out
}

// allOrdinals returns 0..n-1.
func allOrdinals(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// initialBatchCap is the column capacity of a scan's first batch. Batches
// grow toward DefaultBatchSize by appending, and every subsequent batch is
// allocated at the previous batch's fill (see nextFillCap) — so a full table
// scan pays the growth ramp once and then allocates full batches, while a
// selective seek returning a handful of rows never allocates the ~50 KB of
// column buffers a fixed DefaultBatchSize capacity would cost per query. The
// difference is the serving layer's point-query floor.
const initialBatchCap = 32

// nextFillCap returns the capacity hint for the batch after one that filled
// n rows: the observed fill with 2x headroom, clamped to the batch bounds.
func nextFillCap(n int) int {
	n *= 2
	if n < initialBatchCap {
		return initialBatchCap
	}
	if n > DefaultBatchSize {
		return DefaultBatchSize
	}
	return n
}

// columnKinds returns the declared kinds of the given base-table ordinals —
// the typed-decoder selectors for a projected scan's output columns.
func columnKinds(t *catalog.Table, cols []int) []value.Kind {
	out := make([]value.Kind, len(cols))
	for i, ord := range cols {
		out[i] = t.Columns[ord].Kind
	}
	return out
}

// ascendingOrdinals reports whether cols is sorted strictly ascending — the
// precondition for the row-protocol projected decode (the batch fill handles
// arbitrary order by sorting its field map).
func ascendingOrdinals(cols []int) bool {
	for i := 1; i < len(cols); i++ {
		if cols[i] <= cols[i-1] {
			return false
		}
	}
	return true
}

// compressBatchCols run-encodes the marked output columns of a freshly
// filled batch. The planner marks a scan's sort-prefix columns (clustered-key
// or index-key prefix), where the storage order makes long runs likely — the
// paper's Figure-4 structure. An equality seek collapses its prefix column to
// a single run, which Compress turns into a Const vector; columns that turn
// out not to compress stay Flat, so the marking is a hint, never a
// correctness requirement.
func compressBatchCols(b *Batch, cols []int) {
	for _, c := range cols {
		// Dictionary-encoded columns are already compressed; flattening them
		// just to re-find runs would forfeit the encoding.
		if c >= 0 && c < len(b.Cols) && b.Cols[c].Encoding() == vector.Flat {
			b.Cols[c] = vector.Compress(b.Cols[c].Flat())
		}
	}
}

// SeqScan reads every row of a table (clustered-key order for clustered
// tables, insertion order for heaps) and projects the requested columns.
type SeqScan struct {
	Table *catalog.Table
	Cols  []int // base-table ordinals to produce; nil means all
	// EncodeCols lists output positions to run-encode in produced batches
	// (typically the clustered-key prefix, set by the planner).
	EncodeCols []int

	it      *catalog.RowIterator
	schema  []ColumnInfo
	fillCap int
	fill    *colFiller
	asc     bool
}

// NewSeqScan builds a sequential scan over the table producing cols (nil = all).
func NewSeqScan(t *catalog.Table, cols []int) *SeqScan {
	if cols == nil {
		cols = allOrdinals(len(t.Columns))
	}
	return &SeqScan{
		Table: t, Cols: cols, schema: projectedSchema(t, cols),
		fill: newColFiller(columnKinds(t, cols), cols, true),
		asc:  ascendingOrdinals(cols),
	}
}

// Schema implements Operator.
func (s *SeqScan) Schema() []ColumnInfo { return s.schema }

// Open implements Operator.
func (s *SeqScan) Open() error {
	s.it = s.Table.Scan()
	s.fillCap = 0
	// The filler's column arena deliberately survives Open: a plan-cache
	// lease's later executions reuse fully-grown buffers.
	s.fill.prepareKey(s.Table, s.Cols)
	return nil
}

// Next implements Operator.
func (s *SeqScan) Next() (Row, bool, error) {
	if s.it == nil {
		return nil, false, errNotOpen("SeqScan")
	}
	if s.asc {
		row, ok, err := s.it.NextProjectedInto(nil, s.Cols)
		if err != nil || !ok {
			return nil, false, err
		}
		return row, true, nil
	}
	row, ok, err := s.it.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	return projectRow(row, s.Cols), true, nil
}

// NextBatch implements BatchOperator.
func (s *SeqScan) NextBatch() (*Batch, bool, error) {
	if s.it == nil {
		return nil, false, errNotOpen("SeqScan")
	}
	b, err := s.fill.fillRows(s.it, s.fillCap, s.EncodeCols)
	if err != nil || b == nil {
		return nil, false, err
	}
	s.fillCap = nextFillCap(b.physRows())
	return b, true, nil
}

// Close implements Operator.
func (s *SeqScan) Close() error {
	s.it = nil
	return nil
}

// NumScanRows implements Morseler.
func (s *SeqScan) NumScanRows() int64 { return s.Table.RowCount() }

// Morsels implements Morseler: the table splits into leaf-page (or heap-page)
// ranges of roughly targetRows rows each, every morsel a self-contained scan
// over its range that preserves the encoding hints.
func (s *SeqScan) Morsels(targetRows int) ([]BatchOperator, bool) {
	morsels := s.Table.ScanMorsels(int64(targetRows))
	if len(morsels) < 2 {
		return nil, false
	}
	out := make([]BatchOperator, len(morsels))
	for i, m := range morsels {
		out[i] = newMorselScan(m, s.Table, s.Cols, s.EncodeCols, s.schema)
	}
	return out, true
}

// rowMorsel is any cheap partition descriptor that opens fresh row iterators
// over its slice of a table: full-scan morsels (catalog.ScanMorsel) and
// clustered-seek morsels (catalog.ClusteredSeekMorsel).
type rowMorsel interface {
	Iterator() *catalog.RowIterator
}

// morselScan scans one row morsel of a table, projecting and run-encoding
// columns exactly like the scan it was split from. Each morsel owns its
// iterator, so concurrent workers can scan disjoint morsels of one table.
// Its filler runs with recycle off: morsel batches cross goroutines through
// the parallel pipe, which retains them past the next fill.
type morselScan struct {
	morsel rowMorsel
	table  *catalog.Table
	cols   []int
	encode []int
	schema []ColumnInfo

	it      *catalog.RowIterator
	fillCap int
	fill    *colFiller
}

func newMorselScan(m rowMorsel, t *catalog.Table, cols, encode []int, schema []ColumnInfo) *morselScan {
	return &morselScan{
		morsel: m, table: t, cols: cols, encode: encode, schema: schema,
		fill: newColFiller(columnKinds(t, cols), cols, false),
	}
}

// Schema implements Operator.
func (s *morselScan) Schema() []ColumnInfo { return s.schema }

// Open implements Operator.
func (s *morselScan) Open() error {
	s.it = s.morsel.Iterator()
	// Morsels exist because the range is large; start at full batches.
	s.fillCap = DefaultBatchSize
	s.fill.prepareKey(s.table, s.cols)
	return nil
}

// Next implements Operator.
func (s *morselScan) Next() (Row, bool, error) {
	if s.it == nil {
		return nil, false, errNotOpen("morselScan")
	}
	row, ok, err := s.it.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	return projectRow(row, s.cols), true, nil
}

// NextBatch implements BatchOperator.
func (s *morselScan) NextBatch() (*Batch, bool, error) {
	if s.it == nil {
		return nil, false, errNotOpen("morselScan")
	}
	b, err := s.fill.fillRows(s.it, s.fillCap, s.encode)
	if err != nil || b == nil {
		return nil, false, err
	}
	return b, true, nil
}

// Close implements Operator.
func (s *morselScan) Close() error {
	s.it = nil
	return nil
}

// ClusteredSeek scans the rows whose clustered-key prefix lies in a constant
// range. It is the access path for sargable predicates on the clustered key.
type ClusteredSeek struct {
	Table  *catalog.Table
	Lo, Hi []value.Value // prefix bounds; nil = open
	LoIncl bool
	HiIncl bool
	Cols   []int
	// EncodeCols lists output positions to run-encode in produced batches
	// (the clustered-key prefix; an equality seek makes its leading column a
	// Const vector).
	EncodeCols []int

	it      *catalog.RowIterator
	schema  []ColumnInfo
	fillCap int
	fill    *colFiller
	asc     bool
	// rng memoizes the seek's leaf range between the NumScanRows and Morsels
	// calls of one parallel rewrite (planning is single-threaded; cached plans
	// are invalidated on any catalog change, so a stale range never executes).
	rng *catalog.SeekLeafRange
}

// NewClusteredSeek builds a clustered-index range scan.
func NewClusteredSeek(t *catalog.Table, lo, hi []value.Value, loIncl, hiIncl bool, cols []int) (*ClusteredSeek, error) {
	if !t.IsClustered() {
		return nil, fmt.Errorf("exec: table %q has no clustered index", t.Name)
	}
	if cols == nil {
		cols = allOrdinals(len(t.Columns))
	}
	return &ClusteredSeek{
		Table: t, Lo: lo, Hi: hi, LoIncl: loIncl, HiIncl: hiIncl,
		Cols: cols, schema: projectedSchema(t, cols),
		fill: newColFiller(columnKinds(t, cols), cols, true),
		asc:  ascendingOrdinals(cols),
	}, nil
}

// Schema implements Operator.
func (s *ClusteredSeek) Schema() []ColumnInfo { return s.schema }

// Open implements Operator.
func (s *ClusteredSeek) Open() error {
	it, err := s.Table.SeekClustered(s.Lo, s.Hi, s.LoIncl, s.HiIncl)
	if err != nil {
		return err
	}
	s.it = it
	s.fillCap = 0
	s.fill.prepareKey(s.Table, s.Cols)
	return nil
}

// Next implements Operator.
func (s *ClusteredSeek) Next() (Row, bool, error) {
	if s.it == nil {
		return nil, false, errNotOpen("ClusteredSeek")
	}
	if s.asc {
		row, ok, err := s.it.NextProjectedInto(nil, s.Cols)
		if err != nil || !ok {
			return nil, false, err
		}
		return row, true, nil
	}
	row, ok, err := s.it.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	return projectRow(row, s.Cols), true, nil
}

// NextBatch implements BatchOperator.
func (s *ClusteredSeek) NextBatch() (*Batch, bool, error) {
	if s.it == nil {
		return nil, false, errNotOpen("ClusteredSeek")
	}
	b, err := s.fill.fillRows(s.it, s.fillCap, s.EncodeCols)
	if err != nil || b == nil {
		return nil, false, err
	}
	s.fillCap = nextFillCap(b.physRows())
	return b, true, nil
}

// Close implements Operator.
func (s *ClusteredSeek) Close() error {
	s.it = nil
	return nil
}

// seekRange computes (once) the run of leaf pages the seek touches, bounded
// by the stop key.
func (s *ClusteredSeek) seekRange() *catalog.SeekLeafRange {
	if s.rng == nil {
		rng, err := s.Table.ClusteredSeekRange(s.Lo, s.Hi, s.LoIncl, s.HiIncl)
		if err != nil {
			return nil
		}
		s.rng = rng
	}
	return s.rng
}

// NumScanRows implements Morseler: the estimated rows in the seek's key
// range (leaf count x average leaf fill), not the whole table — a selective
// seek below the parallelization threshold stays serial.
func (s *ClusteredSeek) NumScanRows() int64 {
	rng := s.seekRange()
	if rng == nil {
		return 0
	}
	return rng.EstRows()
}

// Morsels implements Morseler: the seek's leaf range splits into runs of
// roughly targetRows rows, every morsel a self-contained range scan sharing
// the seek's stop bound (the first also carries the start position), so
// selective range scans parallelize instead of falling back to serial.
func (s *ClusteredSeek) Morsels(targetRows int) ([]BatchOperator, bool) {
	rng := s.seekRange()
	if rng == nil {
		return nil, false
	}
	morsels := s.Table.ClusteredSeekMorsels(rng, int64(targetRows))
	if len(morsels) < 2 {
		return nil, false
	}
	out := make([]BatchOperator, len(morsels))
	for i, m := range morsels {
		out[i] = newMorselScan(m, s.Table, s.Cols, s.EncodeCols, s.schema)
	}
	return out, true
}

// IndexSeek scans a secondary index for entries whose key prefix lies in a
// constant range. When the index covers the requested columns the base table
// is never touched; otherwise each entry is resolved to its base row through
// the clustered key (or RID for heaps), which costs one extra lookup per row.
type IndexSeek struct {
	Index  *catalog.Index
	Lo, Hi []value.Value
	LoIncl bool
	HiIncl bool
	Cols   []int
	// EncodeCols lists output positions to run-encode in produced batches
	// (the index-key prefix; an equality seek makes its leading column a
	// Const vector).
	EncodeCols []int

	it      *catalog.IndexIterator
	schema  []ColumnInfo
	fillCap int
	covered bool
	fill    *colFiller
	// entryPos maps requested column ordinal -> position in the index entry.
	entryPos map[int]int
	// rng memoizes the seek's leaf range between NumScanRows and Morsels (see
	// ClusteredSeek.rng).
	rng *catalog.SeekLeafRange
}

// NewIndexSeek builds a secondary-index range scan producing the given base
// table columns.
func NewIndexSeek(ix *catalog.Index, lo, hi []value.Value, loIncl, hiIncl bool, cols []int) (*IndexSeek, error) {
	t := ix.Table
	if cols == nil {
		cols = allOrdinals(len(t.Columns))
	}
	s := &IndexSeek{
		Index: ix, Lo: lo, Hi: hi, LoIncl: loIncl, HiIncl: hiIncl, Cols: cols,
		schema: projectedSchema(t, cols),
	}
	s.covered = ix.Covers(cols)
	s.entryPos = make(map[int]int)
	for pos, ord := range ix.EntryColumnOrdinals() {
		s.entryPos[ord] = pos
	}
	if s.covered {
		s.fill = newColFiller(columnKinds(t, cols), s.coveredPositions(), true)
	}
	return s, nil
}

// coveredPositions maps the projected base ordinals to their positions in the
// index entry payload — the filler's field map for covered seeks.
func (s *IndexSeek) coveredPositions() []int {
	out := make([]int, len(s.Cols))
	for i, ord := range s.Cols {
		out[i] = s.entryPos[ord]
	}
	return out
}

// Covered reports whether the seek is answered from the index alone.
func (s *IndexSeek) Covered() bool { return s.covered }

// Schema implements Operator.
func (s *IndexSeek) Schema() []ColumnInfo { return s.schema }

// Open implements Operator.
func (s *IndexSeek) Open() error {
	s.it = s.Index.Seek(s.Lo, s.Hi, s.LoIncl, s.HiIncl)
	s.fillCap = 0
	return nil
}

// rowFromEntry converts one index entry into an output row, resolving the
// base row when the index does not cover the requested columns.
func (s *IndexSeek) rowFromEntry(entry catalog.IndexEntry) (Row, error) {
	if s.covered {
		out := make(Row, len(s.Cols))
		for i, ord := range s.Cols {
			out[i] = entry.Values[s.entryPos[ord]]
		}
		return out, nil
	}
	base, err := lookupBaseRow(s.Index, entry)
	if err != nil {
		return nil, err
	}
	return projectRow(base, s.Cols), nil
}

// Next implements Operator.
func (s *IndexSeek) Next() (Row, bool, error) {
	if s.it == nil {
		return nil, false, errNotOpen("IndexSeek")
	}
	entry, ok, err := s.it.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	row, err := s.rowFromEntry(entry)
	if err != nil {
		return nil, false, err
	}
	return row, true, nil
}

// NextBatch implements BatchOperator.
func (s *IndexSeek) NextBatch() (*Batch, bool, error) {
	if s.it == nil {
		return nil, false, errNotOpen("IndexSeek")
	}
	var b *Batch
	var err error
	if s.covered {
		// Covered seeks decode projected columns straight from entry payload
		// spans; the base table is never touched.
		b, err = s.fill.fillEntries(s.it, s.fillCap, s.EncodeCols)
	} else {
		b, err = fillBatchFromEntries(s.it, s, s.fillCap)
	}
	if err != nil || b == nil {
		return nil, false, err
	}
	s.fillCap = nextFillCap(b.physRows())
	return b, true, nil
}

// fillBatchFromEntries pulls up to DefaultBatchSize index entries into a
// fresh batch using the seek's entry-to-row conversion, with the same
// adaptive initial capacity as fillBatchFromIterator.
func fillBatchFromEntries(it *catalog.IndexIterator, seek *IndexSeek, capHint int) (*Batch, error) {
	if capHint <= 0 {
		capHint = initialBatchCap
	}
	if capHint > DefaultBatchSize {
		capHint = DefaultBatchSize
	}
	b := NewBatch(len(seek.Cols), capHint)
	for b.physRows() < DefaultBatchSize {
		entry, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		row, err := seek.rowFromEntry(entry)
		if err != nil {
			return nil, err
		}
		b.AppendRow(row)
	}
	if b.physRows() == 0 {
		return nil, nil
	}
	compressBatchCols(b, seek.EncodeCols)
	return b, nil
}

// Close implements Operator.
func (s *IndexSeek) Close() error {
	s.it = nil
	return nil
}

// seekRange computes (once) the run of index leaf pages the seek touches.
func (s *IndexSeek) seekRange() *catalog.SeekLeafRange {
	if s.rng == nil {
		s.rng = s.Index.SeekRange(s.Lo, s.Hi, s.LoIncl, s.HiIncl)
	}
	return s.rng
}

// NumScanRows implements Morseler: estimated entries in the seek's key range.
func (s *IndexSeek) NumScanRows() int64 {
	return s.seekRange().EstRows()
}

// Morsels implements Morseler: the index seek's leaf range splits into entry
// runs; each morsel resolves base rows independently (covered seeks never
// touch the base table; uncovered ones do their clustered lookups through the
// shared, read-only tree), so selective secondary-index range scans
// parallelize too.
func (s *IndexSeek) Morsels(targetRows int) ([]BatchOperator, bool) {
	morsels := s.Index.SeekMorsels(s.seekRange(), int64(targetRows))
	if len(morsels) < 2 {
		return nil, false
	}
	out := make([]BatchOperator, len(morsels))
	for i, m := range morsels {
		ms := &morselIndexSeek{parent: s, morsel: m}
		if s.covered {
			// Each morsel owns a non-recycling filler: its batches cross
			// goroutines through the parallel pipe.
			ms.fill = newColFiller(columnKinds(s.Index.Table, s.Cols), s.coveredPositions(), false)
		}
		out[i] = ms
	}
	return out, true
}

// morselIndexSeek scans one entry morsel of a partitioned index seek,
// converting entries to output rows exactly like the IndexSeek it was split
// from (the parent's conversion state — covered flag, entry positions,
// projection — is immutable after construction, so morsels share it; the
// filler is per-morsel state).
type morselIndexSeek struct {
	parent *IndexSeek
	morsel catalog.IndexSeekMorsel
	fill   *colFiller

	it *catalog.IndexIterator
}

// Schema implements Operator.
func (s *morselIndexSeek) Schema() []ColumnInfo { return s.parent.schema }

// Open implements Operator.
func (s *morselIndexSeek) Open() error {
	s.it = s.morsel.Iterator()
	return nil
}

// Next implements Operator.
func (s *morselIndexSeek) Next() (Row, bool, error) {
	if s.it == nil {
		return nil, false, errNotOpen("morselIndexSeek")
	}
	entry, ok, err := s.it.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	row, err := s.parent.rowFromEntry(entry)
	if err != nil {
		return nil, false, err
	}
	return row, true, nil
}

// NextBatch implements BatchOperator.
func (s *morselIndexSeek) NextBatch() (*Batch, bool, error) {
	if s.it == nil {
		return nil, false, errNotOpen("morselIndexSeek")
	}
	// Morsels exist because the range is large; start at full batches.
	var b *Batch
	var err error
	if s.fill != nil {
		b, err = s.fill.fillEntries(s.it, DefaultBatchSize, s.parent.EncodeCols)
	} else {
		b, err = fillBatchFromEntries(s.it, s.parent, DefaultBatchSize)
	}
	if err != nil || b == nil {
		return nil, false, err
	}
	return b, true, nil
}

// Close implements Operator.
func (s *morselIndexSeek) Close() error {
	s.it = nil
	return nil
}

// lookupBaseRow resolves a secondary-index entry to its base-table row.
func lookupBaseRow(ix *catalog.Index, entry catalog.IndexEntry) (Row, error) {
	t := ix.Table
	if !t.IsClustered() {
		return t.LookupRID(entry.RID)
	}
	// Locate through the clustered key carried in the entry.
	pos := make(map[int]int)
	for p, ord := range ix.EntryColumnOrdinals() {
		pos[ord] = p
	}
	key := make([]value.Value, len(t.Clustered.KeyColumns))
	for i, ord := range t.Clustered.KeyColumns {
		p, ok := pos[ord]
		if !ok {
			return nil, fmt.Errorf("exec: index %q entry is missing clustered key column", ix.Name)
		}
		key[i] = entry.Values[p]
	}
	it, err := t.SeekClustered(key, key, true, true)
	if err != nil {
		return nil, err
	}
	for {
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("exec: base row for index %q entry not found", ix.Name)
		}
		// With duplicate clustered keys several rows share the key; match the
		// index key columns too so we return a row consistent with the entry.
		match := true
		for i, ord := range ix.KeyColumns {
			if value.Compare(row[ord], entry.Values[i]) != 0 {
				match = false
				break
			}
		}
		if match {
			return row, nil
		}
	}
}
