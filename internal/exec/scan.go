package exec

import (
	"fmt"

	"oldelephant/internal/catalog"
	"oldelephant/internal/value"
	"oldelephant/internal/vector"
)

// projectedSchema builds the output schema for a table access that returns
// the given base-table column ordinals.
func projectedSchema(t *catalog.Table, cols []int) []ColumnInfo {
	out := make([]ColumnInfo, len(cols))
	for i, ord := range cols {
		out[i] = ColumnInfo{Name: t.Columns[ord].Name, Kind: t.Columns[ord].Kind}
	}
	return out
}

// projectRow picks the given base-table ordinals out of a full row.
func projectRow(row Row, cols []int) Row {
	out := make(Row, len(cols))
	for i, ord := range cols {
		out[i] = row[ord]
	}
	return out
}

// allOrdinals returns 0..n-1.
func allOrdinals(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// fillBatchFromIterator pulls up to DefaultBatchSize rows from a row
// iterator into a fresh column-major batch, projecting the given base-table
// ordinals. A nil batch result means the iterator is exhausted. The output
// positions listed in encode are run-encoded afterwards (see
// compressBatchCols).
func fillBatchFromIterator(it *catalog.RowIterator, cols []int, encode []int) (*Batch, error) {
	// Fill raw value slices and wrap them as vectors once at the end: the
	// per-value loop is the scan hot path, so it must stay a plain append.
	vals := make([][]value.Value, len(cols))
	for i := range vals {
		vals[i] = make([]value.Value, 0, DefaultBatchSize)
	}
	n := 0
	// The decode buffer is reused across rows: values are copied into the
	// column vectors immediately, so the aliasing is safe.
	var buf []value.Value
	for n < DefaultBatchSize {
		row, ok, err := it.NextInto(buf)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		buf = row
		for i, ord := range cols {
			vals[i] = append(vals[i], row[ord])
		}
		n++
	}
	if n == 0 {
		return nil, nil
	}
	b := &Batch{Cols: make([]*vector.Vector, len(cols)), n: n}
	for i := range vals {
		b.Cols[i] = vector.NewFlat(vals[i])
	}
	compressBatchCols(b, encode)
	return b, nil
}

// compressBatchCols run-encodes the marked output columns of a freshly
// filled batch. The planner marks a scan's sort-prefix columns (clustered-key
// or index-key prefix), where the storage order makes long runs likely — the
// paper's Figure-4 structure. An equality seek collapses its prefix column to
// a single run, which Compress turns into a Const vector; columns that turn
// out not to compress stay Flat, so the marking is a hint, never a
// correctness requirement.
func compressBatchCols(b *Batch, cols []int) {
	for _, c := range cols {
		if c >= 0 && c < len(b.Cols) {
			b.Cols[c] = vector.Compress(b.Cols[c].Flat())
		}
	}
}

// SeqScan reads every row of a table (clustered-key order for clustered
// tables, insertion order for heaps) and projects the requested columns.
type SeqScan struct {
	Table *catalog.Table
	Cols  []int // base-table ordinals to produce; nil means all
	// EncodeCols lists output positions to run-encode in produced batches
	// (typically the clustered-key prefix, set by the planner).
	EncodeCols []int

	it     *catalog.RowIterator
	schema []ColumnInfo
}

// NewSeqScan builds a sequential scan over the table producing cols (nil = all).
func NewSeqScan(t *catalog.Table, cols []int) *SeqScan {
	if cols == nil {
		cols = allOrdinals(len(t.Columns))
	}
	return &SeqScan{Table: t, Cols: cols, schema: projectedSchema(t, cols)}
}

// Schema implements Operator.
func (s *SeqScan) Schema() []ColumnInfo { return s.schema }

// Open implements Operator.
func (s *SeqScan) Open() error {
	s.it = s.Table.Scan()
	return nil
}

// Next implements Operator.
func (s *SeqScan) Next() (Row, bool, error) {
	if s.it == nil {
		return nil, false, errNotOpen("SeqScan")
	}
	row, ok, err := s.it.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	return projectRow(row, s.Cols), true, nil
}

// NextBatch implements BatchOperator.
func (s *SeqScan) NextBatch() (*Batch, bool, error) {
	if s.it == nil {
		return nil, false, errNotOpen("SeqScan")
	}
	b, err := fillBatchFromIterator(s.it, s.Cols, s.EncodeCols)
	if err != nil || b == nil {
		return nil, false, err
	}
	return b, true, nil
}

// Close implements Operator.
func (s *SeqScan) Close() error {
	s.it = nil
	return nil
}

// NumScanRows implements Morseler.
func (s *SeqScan) NumScanRows() int64 { return s.Table.RowCount() }

// Morsels implements Morseler: the table splits into leaf-page (or heap-page)
// ranges of roughly targetRows rows each, every morsel a self-contained scan
// over its range that preserves the encoding hints.
func (s *SeqScan) Morsels(targetRows int) ([]BatchOperator, bool) {
	morsels := s.Table.ScanMorsels(int64(targetRows))
	if len(morsels) < 2 {
		return nil, false
	}
	out := make([]BatchOperator, len(morsels))
	for i, m := range morsels {
		out[i] = &morselScan{morsel: m, cols: s.Cols, encode: s.EncodeCols, schema: s.schema}
	}
	return out, true
}

// morselScan scans one ScanMorsel of a table, projecting and run-encoding
// columns exactly like the SeqScan it was split from. Each morsel owns its
// iterator, so concurrent workers can scan disjoint morsels of one table.
type morselScan struct {
	morsel catalog.ScanMorsel
	cols   []int
	encode []int
	schema []ColumnInfo

	it *catalog.RowIterator
}

// Schema implements Operator.
func (s *morselScan) Schema() []ColumnInfo { return s.schema }

// Open implements Operator.
func (s *morselScan) Open() error {
	s.it = s.morsel.Iterator()
	return nil
}

// Next implements Operator.
func (s *morselScan) Next() (Row, bool, error) {
	if s.it == nil {
		return nil, false, errNotOpen("morselScan")
	}
	row, ok, err := s.it.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	return projectRow(row, s.cols), true, nil
}

// NextBatch implements BatchOperator.
func (s *morselScan) NextBatch() (*Batch, bool, error) {
	if s.it == nil {
		return nil, false, errNotOpen("morselScan")
	}
	b, err := fillBatchFromIterator(s.it, s.cols, s.encode)
	if err != nil || b == nil {
		return nil, false, err
	}
	return b, true, nil
}

// Close implements Operator.
func (s *morselScan) Close() error {
	s.it = nil
	return nil
}

// ClusteredSeek scans the rows whose clustered-key prefix lies in a constant
// range. It is the access path for sargable predicates on the clustered key.
type ClusteredSeek struct {
	Table  *catalog.Table
	Lo, Hi []value.Value // prefix bounds; nil = open
	LoIncl bool
	HiIncl bool
	Cols   []int
	// EncodeCols lists output positions to run-encode in produced batches
	// (the clustered-key prefix; an equality seek makes its leading column a
	// Const vector).
	EncodeCols []int

	it     *catalog.RowIterator
	schema []ColumnInfo
}

// NewClusteredSeek builds a clustered-index range scan.
func NewClusteredSeek(t *catalog.Table, lo, hi []value.Value, loIncl, hiIncl bool, cols []int) (*ClusteredSeek, error) {
	if !t.IsClustered() {
		return nil, fmt.Errorf("exec: table %q has no clustered index", t.Name)
	}
	if cols == nil {
		cols = allOrdinals(len(t.Columns))
	}
	return &ClusteredSeek{
		Table: t, Lo: lo, Hi: hi, LoIncl: loIncl, HiIncl: hiIncl,
		Cols: cols, schema: projectedSchema(t, cols),
	}, nil
}

// Schema implements Operator.
func (s *ClusteredSeek) Schema() []ColumnInfo { return s.schema }

// Open implements Operator.
func (s *ClusteredSeek) Open() error {
	it, err := s.Table.SeekClustered(s.Lo, s.Hi, s.LoIncl, s.HiIncl)
	if err != nil {
		return err
	}
	s.it = it
	return nil
}

// Next implements Operator.
func (s *ClusteredSeek) Next() (Row, bool, error) {
	if s.it == nil {
		return nil, false, errNotOpen("ClusteredSeek")
	}
	row, ok, err := s.it.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	return projectRow(row, s.Cols), true, nil
}

// NextBatch implements BatchOperator.
func (s *ClusteredSeek) NextBatch() (*Batch, bool, error) {
	if s.it == nil {
		return nil, false, errNotOpen("ClusteredSeek")
	}
	b, err := fillBatchFromIterator(s.it, s.Cols, s.EncodeCols)
	if err != nil || b == nil {
		return nil, false, err
	}
	return b, true, nil
}

// Close implements Operator.
func (s *ClusteredSeek) Close() error {
	s.it = nil
	return nil
}

// IndexSeek scans a secondary index for entries whose key prefix lies in a
// constant range. When the index covers the requested columns the base table
// is never touched; otherwise each entry is resolved to its base row through
// the clustered key (or RID for heaps), which costs one extra lookup per row.
type IndexSeek struct {
	Index  *catalog.Index
	Lo, Hi []value.Value
	LoIncl bool
	HiIncl bool
	Cols   []int
	// EncodeCols lists output positions to run-encode in produced batches
	// (the index-key prefix; an equality seek makes its leading column a
	// Const vector).
	EncodeCols []int

	it      *catalog.IndexIterator
	schema  []ColumnInfo
	covered bool
	// entryPos maps requested column ordinal -> position in the index entry.
	entryPos map[int]int
}

// NewIndexSeek builds a secondary-index range scan producing the given base
// table columns.
func NewIndexSeek(ix *catalog.Index, lo, hi []value.Value, loIncl, hiIncl bool, cols []int) (*IndexSeek, error) {
	t := ix.Table
	if cols == nil {
		cols = allOrdinals(len(t.Columns))
	}
	s := &IndexSeek{
		Index: ix, Lo: lo, Hi: hi, LoIncl: loIncl, HiIncl: hiIncl, Cols: cols,
		schema: projectedSchema(t, cols),
	}
	s.covered = ix.Covers(cols)
	s.entryPos = make(map[int]int)
	for pos, ord := range ix.EntryColumnOrdinals() {
		s.entryPos[ord] = pos
	}
	return s, nil
}

// Covered reports whether the seek is answered from the index alone.
func (s *IndexSeek) Covered() bool { return s.covered }

// Schema implements Operator.
func (s *IndexSeek) Schema() []ColumnInfo { return s.schema }

// Open implements Operator.
func (s *IndexSeek) Open() error {
	s.it = s.Index.Seek(s.Lo, s.Hi, s.LoIncl, s.HiIncl)
	return nil
}

// rowFromEntry converts one index entry into an output row, resolving the
// base row when the index does not cover the requested columns.
func (s *IndexSeek) rowFromEntry(entry catalog.IndexEntry) (Row, error) {
	if s.covered {
		out := make(Row, len(s.Cols))
		for i, ord := range s.Cols {
			out[i] = entry.Values[s.entryPos[ord]]
		}
		return out, nil
	}
	base, err := lookupBaseRow(s.Index, entry)
	if err != nil {
		return nil, err
	}
	return projectRow(base, s.Cols), nil
}

// Next implements Operator.
func (s *IndexSeek) Next() (Row, bool, error) {
	if s.it == nil {
		return nil, false, errNotOpen("IndexSeek")
	}
	entry, ok, err := s.it.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	row, err := s.rowFromEntry(entry)
	if err != nil {
		return nil, false, err
	}
	return row, true, nil
}

// NextBatch implements BatchOperator.
func (s *IndexSeek) NextBatch() (*Batch, bool, error) {
	if s.it == nil {
		return nil, false, errNotOpen("IndexSeek")
	}
	b := NewBatch(len(s.Cols), DefaultBatchSize)
	for b.physRows() < DefaultBatchSize {
		entry, ok, err := s.it.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		row, err := s.rowFromEntry(entry)
		if err != nil {
			return nil, false, err
		}
		b.AppendRow(row)
	}
	if b.physRows() == 0 {
		return nil, false, nil
	}
	compressBatchCols(b, s.EncodeCols)
	return b, true, nil
}

// Close implements Operator.
func (s *IndexSeek) Close() error {
	s.it = nil
	return nil
}

// lookupBaseRow resolves a secondary-index entry to its base-table row.
func lookupBaseRow(ix *catalog.Index, entry catalog.IndexEntry) (Row, error) {
	t := ix.Table
	if !t.IsClustered() {
		return t.LookupRID(entry.RID)
	}
	// Locate through the clustered key carried in the entry.
	pos := make(map[int]int)
	for p, ord := range ix.EntryColumnOrdinals() {
		pos[ord] = p
	}
	key := make([]value.Value, len(t.Clustered.KeyColumns))
	for i, ord := range t.Clustered.KeyColumns {
		p, ok := pos[ord]
		if !ok {
			return nil, fmt.Errorf("exec: index %q entry is missing clustered key column", ix.Name)
		}
		key[i] = entry.Values[p]
	}
	it, err := t.SeekClustered(key, key, true, true)
	if err != nil {
		return nil, err
	}
	for {
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("exec: base row for index %q entry not found", ix.Name)
		}
		// With duplicate clustered keys several rows share the key; match the
		// index key columns too so we return a row consistent with the entry.
		match := true
		for i, ord := range ix.KeyColumns {
			if value.Compare(row[ord], entry.Values[i]) != 0 {
				match = false
				break
			}
		}
		if match {
			return row, nil
		}
	}
}
