// Morsel-driven parallel execution. A partitionable source (Morseler) splits
// its row range into morsels — small, self-contained scans over disjoint,
// consecutive row ranges. An atomic cursor hands morsels to a fixed pool of
// worker goroutines; each worker runs its own clone of the stateless operator
// pipeline (Filter/Project) over the morsels it claims, so scans, predicate
// kernels and partial aggregation all run concurrently. Compressed (Const/
// RLE/Dict) vectors flow through worker pipelines unchanged: a morsel's
// batches cross the worker boundary in whatever encoding the scan produced.
//
// Every merge operator re-establishes the serial order: ParallelMerge
// reassembles row streams in morsel order, the parallel aggregates combine
// per-morsel partial states in morsel order (so even float sums are
// reproducible run to run), and ParallelSort K-way-merges per-morsel sorted
// runs with a morsel-order tie-break, reproducing the serial stable sort.
// Result: a parallel plan returns exactly what the serial plan returns, made
// deterministic by construction rather than by scheduling luck.
package exec

import (
	"container/heap"
	"context"
	"sync"
	"sync/atomic"
)

// DefaultMorselRows is the target number of rows per morsel: large enough to
// amortize per-morsel overhead (a handful of batches), small enough that the
// atomic cursor balances skewed pipelines across workers.
const DefaultMorselRows = 8 * DefaultBatchSize

// Morseler is a batch source that can split its row range into morsels.
// SeqScan (leaf-page ranges) and colstore.ProjectionScan (row windows)
// implement it.
type Morseler interface {
	BatchOperator
	// NumScanRows reports the total row count available for partitioning —
	// the planner's parallelization threshold input.
	NumScanRows() int64
	// Morsels splits the source into operators over disjoint, consecutive
	// row ranges of roughly targetRows rows whose concatenation in slice
	// order reproduces the source's row stream exactly. Each morsel operator
	// owns its cursor state, so distinct morsels can be scanned concurrently.
	// Morsel operators carry a stronger batch contract than BatchOperator's
	// minimum: every NextBatch must return freshly allocated (or immutable,
	// never-recycled) columns, because the merge operators buffer a morsel's
	// batches past subsequent NextBatch calls and hand them across goroutines.
	// ok is false when the source cannot be split into at least two morsels.
	Morsels(targetRows int) (parts []BatchOperator, ok bool)
}

// PipelineFunc builds a fresh clone of the stateless operator pipeline
// (Filter/Project) that sits between the scan and the pipeline breaker. It is
// called once per morsel, possibly from concurrent workers, so it must not
// share mutable state between clones (shared expression trees are fine: they
// are immutable and their kernels are pure).
type PipelineFunc func(src BatchOperator) BatchOperator

func identityPipeline(src BatchOperator) BatchOperator { return src }

// runnerResult is one morsel's outcome in flight from a worker.
type runnerResult struct {
	seq int
	val any
	err error
}

// orderedRunner fans a morsel list out to a pool of worker goroutines — the
// atomic cursor hands the next unclaimed morsel to whichever worker goes
// idle — and yields each morsel's result in morsel order (reordering happens
// at the consumer, so workers never wait for each other).
type orderedRunner struct {
	parts   []BatchOperator
	workers int
	fn      func(part BatchOperator) (any, error)

	cursor  atomic.Int64
	results chan runnerResult
	quit    chan struct{}
	wg      sync.WaitGroup
	pending map[int]runnerResult
	next    int
	started bool
	stopped bool
}

func newOrderedRunner(parts []BatchOperator, workers int, fn func(BatchOperator) (any, error)) *orderedRunner {
	if workers < 1 {
		workers = 1
	}
	if workers > len(parts) {
		workers = len(parts)
	}
	return &orderedRunner{parts: parts, workers: workers, fn: fn}
}

// start launches the worker pool. Called lazily from the first nextResult so
// an operator that is opened but never pulled does no work.
func (r *orderedRunner) start() {
	r.results = make(chan runnerResult, r.workers)
	r.quit = make(chan struct{})
	r.pending = make(map[int]runnerResult)
	r.started = true
	r.wg.Add(r.workers)
	for w := 0; w < r.workers; w++ {
		go func() {
			defer r.wg.Done()
			for {
				select {
				case <-r.quit:
					return
				default:
				}
				seq := int(r.cursor.Add(1)) - 1
				if seq >= len(r.parts) {
					return
				}
				val, err := r.fn(r.parts[seq])
				select {
				case r.results <- runnerResult{seq: seq, val: val, err: err}:
				case <-r.quit:
					return
				}
			}
		}()
	}
	go func() {
		r.wg.Wait()
		close(r.results)
	}()
}

// nextResult returns morsel results in morsel order; ok is false when every
// morsel has been delivered. The first error short-circuits.
func (r *orderedRunner) nextResult() (any, bool, error) {
	if !r.started {
		r.start()
	}
	for {
		if res, ok := r.pending[r.next]; ok {
			delete(r.pending, r.next)
			r.next++
			if res.err != nil {
				return nil, false, res.err
			}
			return res.val, true, nil
		}
		res, ok := <-r.results
		if !ok {
			return nil, false, nil
		}
		if res.err != nil {
			return nil, false, res.err
		}
		r.pending[res.seq] = res
	}
}

// stop shuts the worker pool down (early exit, Close, error); it is safe to
// call on a runner that never started and idempotent.
func (r *orderedRunner) stop() {
	if !r.started || r.stopped {
		return
	}
	r.stopped = true
	close(r.quit)
	// Drain so workers blocked on a send can observe quit and exit; the
	// channel closes once the pool has fully wound down.
	for range r.results {
	}
}

// batchRowCursor adapts a batch stream to the row protocol for the parallel
// operators' Operator implementations.
type batchRowCursor struct {
	cur *Batch
	pos int
}

func (c *batchRowCursor) reset() { c.cur, c.pos = nil, 0 }

func (c *batchRowCursor) next(pull func() (*Batch, bool, error)) (Row, bool, error) {
	for c.cur == nil || c.pos >= c.cur.NumRows() {
		b, ok, err := pull()
		if err != nil || !ok {
			return nil, false, err
		}
		c.cur, c.pos = b, 0
	}
	row := c.cur.Row(c.pos)
	c.pos++
	return row, true, nil
}

// morselParts splits src into morsels when it is partitionable into at least
// two; build defaults to the identity pipeline.
func morselParts(src BatchOperator, build PipelineFunc) ([]BatchOperator, PipelineFunc, bool) {
	m, ok := src.(Morseler)
	if !ok {
		return nil, nil, false
	}
	parts, ok := m.Morsels(DefaultMorselRows)
	if !ok || len(parts) < 2 {
		return nil, nil, false
	}
	if build == nil {
		build = identityPipeline
	}
	return parts, build, true
}

// drainPipe opens a per-morsel pipeline, collects its batches and closes it.
// Retaining whole batches leans on the Morseler contract above: morsel
// pipelines never recycle batch buffers.
func drainPipe(pipe BatchOperator) ([]*Batch, error) {
	var out []*Batch
	err := drainMorsel(pipe, func(b *Batch) error {
		out = append(out, b)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ParallelMerge executes per-worker clones of a stateless pipeline over the
// morsels of a partitionable source and merges the outputs back in morsel
// order, so the emitted row stream is byte-identical to the serial
// pipeline's. It is the merge operator for unordered (non-aggregating,
// non-sorting) parallel pipelines.
type ParallelMerge struct {
	build   PipelineFunc
	workers int
	parts   []BatchOperator
	schema  []ColumnInfo

	runner *orderedRunner
	cur    []*Batch
	curIdx int
	rows   batchRowCursor
}

// NewParallelScan builds a parallel source over a partitionable scan with an
// identity pipeline: the scan itself runs on the workers, batches come back
// in morsel order.
func NewParallelScan(src BatchOperator, workers int) (*ParallelMerge, bool) {
	return NewParallelMerge(src, nil, workers)
}

// NewParallelMerge builds a parallel pipeline over a partitionable source.
// ok is false when src cannot provide at least two morsels; build nil means
// the identity pipeline.
func NewParallelMerge(src BatchOperator, build PipelineFunc, workers int) (*ParallelMerge, bool) {
	parts, build, ok := morselParts(src, build)
	if !ok {
		return nil, false
	}
	return &ParallelMerge{
		build:   build,
		workers: workers,
		parts:   parts,
		schema:  build(parts[0]).Schema(),
	}, true
}

// Schema implements Operator and BatchOperator.
func (m *ParallelMerge) Schema() []ColumnInfo { return m.schema }

// Open implements Operator and BatchOperator.
func (m *ParallelMerge) Open() error {
	if m.runner != nil {
		m.runner.stop()
	}
	m.runner = newOrderedRunner(m.parts, m.workers, func(part BatchOperator) (any, error) {
		batches, err := drainPipe(m.build(part))
		if err != nil {
			return nil, err
		}
		return batches, nil
	})
	m.cur, m.curIdx = nil, 0
	m.rows.reset()
	return nil
}

// NextBatch implements BatchOperator.
func (m *ParallelMerge) NextBatch() (*Batch, bool, error) {
	if m.runner == nil {
		return nil, false, errNotOpen("ParallelMerge")
	}
	for {
		if m.curIdx < len(m.cur) {
			b := m.cur[m.curIdx]
			m.curIdx++
			return b, true, nil
		}
		val, ok, err := m.runner.nextResult()
		if err != nil || !ok {
			return nil, false, err
		}
		m.cur, m.curIdx = val.([]*Batch), 0
	}
}

// Next implements Operator.
func (m *ParallelMerge) Next() (Row, bool, error) {
	return m.rows.next(m.NextBatch)
}

// Close implements Operator and BatchOperator.
func (m *ParallelMerge) Close() error {
	if m.runner != nil {
		m.runner.stop()
		m.runner = nil
	}
	m.cur = nil
	return nil
}

// parallelBreaker is the scaffolding shared by the materializing parallel
// pipeline breakers (the aggregates and the sort): a morsel runner whose
// per-morsel results — produced by morsel on the workers — merge in morsel
// order into materialized result rows. The concrete breakers supply only the
// two closures; lifecycle, the row/batch protocols and error plumbing live
// here once.
type parallelBreaker struct {
	name    string
	workers int
	parts   []BatchOperator
	schema  []ColumnInfo
	// morsel drains one per-morsel pipeline into the breaker's partial form;
	// it runs on the worker goroutines.
	morsel func(part BatchOperator) (any, error)
	// merge folds the morsel partials — delivered in morsel order by next —
	// into the final result rows; it runs on the consumer.
	merge func(next func() (any, bool, error)) ([]Row, error)

	runner  *orderedRunner
	results []Row
	built   bool
	pos     int
	rows    batchRowCursor
	// ctx, when set by ApplyContext after Open, is checked in the merge loop
	// between morsel partials, so cancellation is observed while workers are
	// still producing. Open clears it.
	ctx context.Context
}

// Schema implements Operator and BatchOperator.
func (b *parallelBreaker) Schema() []ColumnInfo { return b.schema }

// Open implements Operator and BatchOperator.
func (b *parallelBreaker) Open() error {
	if b.runner != nil {
		b.runner.stop()
	}
	b.runner = newOrderedRunner(b.parts, b.workers, b.morsel)
	b.results, b.built, b.pos = nil, false, 0
	b.rows.reset()
	b.ctx = nil
	return nil
}

// NextBatch implements BatchOperator.
func (b *parallelBreaker) NextBatch() (*Batch, bool, error) {
	if b.runner == nil {
		return nil, false, errNotOpen(b.name)
	}
	if !b.built {
		next := b.runner.nextResult
		if b.ctx != nil {
			ctx, inner := b.ctx, next
			next = func() (any, bool, error) {
				if err := ctx.Err(); err != nil {
					return nil, false, err
				}
				return inner()
			}
		}
		rows, err := b.merge(next)
		if err != nil {
			return nil, false, err
		}
		b.results, b.built, b.pos = rows, true, 0
	}
	if b.pos >= len(b.results) {
		return nil, false, nil
	}
	return batchFromRows(b.results, &b.pos, len(b.schema)), true, nil
}

// Next implements Operator.
func (b *parallelBreaker) Next() (Row, bool, error) {
	return b.rows.next(b.NextBatch)
}

// Close implements Operator and BatchOperator.
func (b *parallelBreaker) Close() error {
	if b.runner != nil {
		b.runner.stop()
		b.runner = nil
	}
	b.results, b.built = nil, false
	return nil
}

// drainMorsel opens a per-morsel pipeline, feeds every batch to consume and
// closes it — the worker-side loop shared by the aggregate breakers.
func drainMorsel(pipe BatchOperator, consume func(*Batch) error) error {
	if err := pipe.Open(); err != nil {
		return err
	}
	defer pipe.Close()
	for {
		b, ok, err := pipe.NextBatch()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := consume(b); err != nil {
			return err
		}
	}
}

// ParallelHashAggregate is the morsel-parallel form of HashAggregate: each
// worker aggregates whole morsels into private partial hash tables, the
// partials combine in morsel order (partial→final), and the merged groups
// are emitted sorted by encoded key — the identical rows, in the identical
// order, the serial operator produces.
type ParallelHashAggregate struct {
	parallelBreaker
}

// NewParallelHashAggregate builds a parallel hash aggregation over a
// partitionable source; build clones the pipeline between the scan and the
// aggregate (nil = aggregate the scan directly). ok is false when src cannot
// provide at least two morsels.
func NewParallelHashAggregate(src BatchOperator, build PipelineFunc, groupBy []int, aggs []AggSpec, workers int) (*ParallelHashAggregate, bool) {
	parts, build, ok := morselParts(src, build)
	if !ok {
		return nil, false
	}
	return &ParallelHashAggregate{parallelBreaker{
		name:    "ParallelHashAggregate",
		workers: workers,
		parts:   parts,
		schema:  aggSchemaFromCols(build(parts[0]).Schema(), groupBy, aggs),
		morsel: func(part BatchOperator) (any, error) {
			hb := newHashAggBuilder(groupBy, aggs)
			if err := drainMorsel(build(part), hb.consumeBatch); err != nil {
				return nil, err
			}
			return hb, nil
		},
		merge: func(next func() (any, bool, error)) ([]Row, error) {
			var total *hashAggBuilder
			for {
				val, ok, err := next()
				if err != nil {
					return nil, err
				}
				if !ok {
					break
				}
				if total == nil {
					total = val.(*hashAggBuilder)
				} else {
					total.mergeFrom(val.(*hashAggBuilder))
				}
			}
			if total == nil {
				total = newHashAggBuilder(groupBy, aggs)
			}
			return total.finish(), nil
		},
	}}, true
}

// ParallelStreamAggregate is the morsel-parallel form of StreamAggregate
// over an input already grouped on the group-by columns: each worker
// stream-aggregates whole morsels into ordered partial runs, and the runs
// concatenate in morsel order — merging the one group that can straddle a
// morsel seam — to reproduce the serial operator's output exactly.
type ParallelStreamAggregate struct {
	parallelBreaker
}

// NewParallelStreamAggregate builds a parallel streaming aggregation over a
// partitionable source whose rows arrive grouped on the group-by columns
// (the same precondition as StreamAggregate). ok is false when src cannot
// provide at least two morsels.
func NewParallelStreamAggregate(src BatchOperator, build PipelineFunc, groupBy []int, aggs []AggSpec, workers int) (*ParallelStreamAggregate, bool) {
	parts, build, ok := morselParts(src, build)
	if !ok {
		return nil, false
	}
	return &ParallelStreamAggregate{parallelBreaker{
		name:    "ParallelStreamAggregate",
		workers: workers,
		parts:   parts,
		schema:  aggSchemaFromCols(build(parts[0]).Schema(), groupBy, aggs),
		morsel: func(part BatchOperator) (any, error) {
			run := newStreamAggRun(groupBy, aggs)
			if err := drainMorsel(build(part), run.consumeBatch); err != nil {
				return nil, err
			}
			return run, nil
		},
		merge: func(next func() (any, bool, error)) ([]Row, error) {
			total := newStreamAggRun(groupBy, aggs)
			for {
				val, ok, err := next()
				if err != nil {
					return nil, err
				}
				if !ok {
					break
				}
				total.appendRun(val.(*streamAggRun))
			}
			return total.finish(), nil
		},
	}}, true
}

// ParallelSort is the morsel-parallel form of Sort: each worker runs the
// pipeline over whole morsels and stable-sorts each morsel's output into a
// run, and the runs are K-way merged with ties broken by morsel order —
// which reproduces the serial operator's stable sort exactly. Limit parents
// consume the merged stream as usual.
type ParallelSort struct {
	parallelBreaker
}

// NewParallelSort builds a parallel sort over a partitionable source; build
// clones the pipeline between the scan and the sort. ok is false when src
// cannot provide at least two morsels.
func NewParallelSort(src BatchOperator, build PipelineFunc, keys []SortKey, workers int) (*ParallelSort, bool) {
	parts, build, ok := morselParts(src, build)
	if !ok {
		return nil, false
	}
	return &ParallelSort{parallelBreaker{
		name:    "ParallelSort",
		workers: workers,
		parts:   parts,
		schema:  build(parts[0]).Schema(),
		morsel: func(part BatchOperator) (any, error) {
			var rows []Row
			err := drainMorsel(build(part), func(b *Batch) error {
				rows = b.AppendRows(rows)
				return nil
			})
			if err != nil {
				return nil, err
			}
			stableSortRows(rows, keys)
			return rows, nil
		},
		merge: func(next func() (any, bool, error)) ([]Row, error) {
			var runs [][]Row
			total := 0
			for {
				val, ok, err := next()
				if err != nil {
					return nil, err
				}
				if !ok {
					break
				}
				if run := val.([]Row); len(run) > 0 {
					runs = append(runs, run)
					total += len(run)
				}
			}
			return mergeSortedRuns(runs, keys, total), nil
		},
	}}, true
}

// runHeap is the K-way merge heap over sorted runs: the top is the run whose
// head row sorts first, ties broken by run (morsel) order so equal keys keep
// their input order — the stable-sort contract.
type runHeap struct {
	runs [][]Row
	pos  []int
	idx  []int // heap of run indices
	keys []SortKey
}

func (h *runHeap) Len() int { return len(h.idx) }
func (h *runHeap) Less(i, j int) bool {
	a, b := h.idx[i], h.idx[j]
	cmp := compareRows(h.runs[a][h.pos[a]], h.runs[b][h.pos[b]], h.keys)
	if cmp != 0 {
		return cmp < 0
	}
	return a < b
}
func (h *runHeap) Swap(i, j int) { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *runHeap) Push(x any)    { h.idx = append(h.idx, x.(int)) }
func (h *runHeap) Pop() any      { x := h.idx[len(h.idx)-1]; h.idx = h.idx[:len(h.idx)-1]; return x }

// mergeSortedRuns K-way merges sorted runs (runs ordered by morsel sequence)
// into one sorted row slice.
func mergeSortedRuns(runs [][]Row, keys []SortKey, total int) []Row {
	switch len(runs) {
	case 0:
		return nil
	case 1:
		return runs[0]
	}
	h := &runHeap{runs: runs, pos: make([]int, len(runs)), keys: keys}
	for i := range runs {
		h.idx = append(h.idx, i)
	}
	heap.Init(h)
	out := make([]Row, 0, total)
	for h.Len() > 0 {
		r := h.idx[0]
		out = append(out, h.runs[r][h.pos[r]])
		h.pos[r]++
		if h.pos[r] >= len(h.runs[r]) {
			heap.Pop(h)
		} else {
			heap.Fix(h, 0)
		}
	}
	return out
}
