package exec

import "context"

// Cooperative cancellation for the serving layer. Execution checks the
// context at batch boundaries — between NextBatch calls on the plan root —
// which bounds the cancellation latency to one batch of downstream work for
// pipelined plans. Materializing breakers (sort, aggregation, a join build)
// consume their whole input inside one NextBatch, so the ctx drains also push
// the context into the breakers with ApplyContext: their drain loops check it
// once per batch (or per DefaultBatchSize rows on the row path), bounding
// cancellation latency to one batch of work even mid-materialization. The
// admission queue, where most of a saturated server's waiting happens,
// cancels immediately.

// ctxErr is the nil-tolerant context check the breaker drain loops use: a
// breaker with no applied context (the plain Drain paths) pays one nil test.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// ApplyContext pushes ctx into every materializing breaker of the operator
// tree rooted at op: Sort, HashAggregate, the shared build state of a
// vectorized hash join (one set covers every probe-side clone), and the
// parallel breakers' merge loops. Pipelined operators are walked through but
// hold no context themselves — the root drain loop covers them. Each
// breaker's Open (or build-state reset) clears its context, so a plan leased
// from the plan cache never sees a stale context from a previous execution;
// callers must therefore apply the context after Open.
func ApplyContext(op any, ctx context.Context) {
	switch o := op.(type) {
	case *Sort:
		o.ctx = ctx
		ApplyContext(o.Input, ctx)
	case *HashAggregate:
		o.ctx = ctx
		ApplyContext(o.Input, ctx)
	case *VectorizedHashJoin:
		o.shared.setContext(ctx)
		ApplyContext(o.Probe, ctx)
		ApplyContext(o.Build, ctx)
	case *ParallelHashAggregate:
		o.parallelBreaker.ctx = ctx
	case *ParallelStreamAggregate:
		o.parallelBreaker.ctx = ctx
	case *ParallelSort:
		o.parallelBreaker.ctx = ctx
	case *Filter:
		ApplyContext(o.Input, ctx)
	case *Project:
		ApplyContext(o.Input, ctx)
	case *Limit:
		ApplyContext(o.Input, ctx)
	case *StreamAggregate:
		ApplyContext(o.Input, ctx)
	case *BatchSource:
		ApplyContext(o.Input, ctx)
	case *RowSource:
		ApplyContext(o.Input, ctx)
	case *HashJoin:
		ApplyContext(o.Left, ctx)
		ApplyContext(o.Right, ctx)
	case *MergeJoin:
		ApplyContext(o.Left, ctx)
		ApplyContext(o.Right, ctx)
	case *NestedLoopJoin:
		ApplyContext(o.Left, ctx)
		ApplyContext(o.Right, ctx)
	case *IndexNestedLoopJoin:
		ApplyContext(o.Outer, ctx)
	case *tracedBatch:
		ApplyContext(o.op, ctx)
	case *tracedRow:
		ApplyContext(o.op, ctx)
	}
}

// DrainBatchesCtx is DrainBatches with cooperative cancellation: the context
// is checked before every NextBatch, and the context's error (DeadlineExceeded
// or Canceled) is returned as soon as it fires.
func DrainBatchesCtx(ctx context.Context, op BatchOperator) ([]Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	ApplyContext(op, ctx)
	var out []Row
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b, ok, err := op.NextBatch()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = b.AppendRows(out)
	}
}

// DrainVectorizedCtx is DrainVectorized with cooperative cancellation.
func DrainVectorizedCtx(ctx context.Context, op Operator) ([]Row, error) {
	return DrainBatchesCtx(ctx, AsBatchOperator(op))
}

// DrainCtx is Drain with cooperative cancellation, checked once per
// DefaultBatchSize rows so the row-at-a-time path pays one atomic load per
// batch-equivalent, not per row.
func DrainCtx(ctx context.Context, op Operator) ([]Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	ApplyContext(op, ctx)
	var out []Row
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for i := 0; i < DefaultBatchSize; i++ {
			row, ok, err := op.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				return out, nil
			}
			out = append(out, row)
		}
	}
}
