package exec

import "context"

// Cooperative cancellation for the serving layer. Execution checks the
// context at batch boundaries — between NextBatch calls on the plan root —
// which bounds the cancellation latency to one batch of downstream work for
// pipelined plans. Materializing breakers (sort, aggregation, a join build)
// consume their whole input inside one NextBatch, so a timeout that fires
// mid-materialization is observed when the breaker surfaces; the admission
// queue, where most of a saturated server's waiting happens, cancels
// immediately.

// DrainBatchesCtx is DrainBatches with cooperative cancellation: the context
// is checked before every NextBatch, and the context's error (DeadlineExceeded
// or Canceled) is returned as soon as it fires.
func DrainBatchesCtx(ctx context.Context, op BatchOperator) ([]Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []Row
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b, ok, err := op.NextBatch()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = b.AppendRows(out)
	}
}

// DrainVectorizedCtx is DrainVectorized with cooperative cancellation.
func DrainVectorizedCtx(ctx context.Context, op Operator) ([]Row, error) {
	return DrainBatchesCtx(ctx, AsBatchOperator(op))
}

// DrainCtx is Drain with cooperative cancellation, checked once per
// DefaultBatchSize rows so the row-at-a-time path pays one atomic load per
// batch-equivalent, not per row.
func DrainCtx(ctx context.Context, op Operator) ([]Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []Row
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for i := 0; i < DefaultBatchSize; i++ {
			row, ok, err := op.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				return out, nil
			}
			out = append(out, row)
		}
	}
}
