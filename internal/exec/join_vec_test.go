package exec

import (
	"fmt"
	"strings"
	"testing"

	"oldelephant/internal/catalog"
	"oldelephant/internal/expr"
	"oldelephant/internal/storage"
	"oldelephant/internal/value"
	"oldelephant/internal/vector"
)

// formatJoinRows renders rows (kinds, values and order) for exact comparison.
func formatJoinRows(rows []Row) string {
	var sb strings.Builder
	for _, r := range rows {
		for _, v := range r {
			sb.WriteString(v.Kind.String())
			sb.WriteByte(':')
			sb.WriteString(v.String())
			sb.WriteByte('|')
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// drainVec runs an operator through the batch protocol.
func drainVec(t testing.TB, op Operator) []Row {
	t.Helper()
	rows, err := DrainVectorized(op)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// joinTestInputs builds matching probe/build ValuesScans with duplicate keys,
// NULL keys on both sides, string payloads and float columns.
func joinTestInputs() (probe, build *ValuesScan) {
	probeCols := []ColumnInfo{
		{Name: "k", Kind: value.KindInt},
		{Name: "p", Kind: value.KindFloat},
	}
	buildCols := []ColumnInfo{
		{Name: "bk", Kind: value.KindInt},
		{Name: "tag", Kind: value.KindString},
	}
	var probeRows, buildRows []Row
	for i := 0; i < 100; i++ {
		k := value.NewInt(int64(i % 17))
		if i%13 == 0 {
			k = value.Null()
		}
		probeRows = append(probeRows, Row{k, value.NewFloat(float64(i))})
	}
	for i := 0; i < 40; i++ {
		k := value.NewInt(int64(i % 23))
		if i%11 == 0 {
			k = value.Null()
		}
		buildRows = append(buildRows, Row{k, value.NewString(fmt.Sprintf("b%d", i))})
	}
	return NewValuesScan(probeCols, probeRows), NewValuesScan(buildCols, buildRows)
}

// TestVectorizedHashJoinMatchesRowHashJoin holds the batch join to the row
// oracle, exactly (values and order), over inputs with duplicate and NULL
// keys, with and without a residual predicate.
func TestVectorizedHashJoinMatchesRowHashJoin(t *testing.T) {
	residuals := map[string]expr.Expr{
		"no residual": nil,
		"residual":    expr.NewBinary(expr.OpLt, expr.NewColumn(1, "p"), expr.NewConst(value.NewFloat(60))),
		"reject all":  expr.NewBinary(expr.OpLt, expr.NewColumn(1, "p"), expr.NewConst(value.NewFloat(-1))),
	}
	for name, residual := range residuals {
		probe, build := joinTestInputs()
		vj, err := NewVectorizedHashJoin(probe, build, []int{0}, []int{0}, residual)
		if err != nil {
			t.Fatal(err)
		}
		got := drainVec(t, vj)
		probe2, build2 := joinTestInputs()
		hj, err := NewHashJoin(probe2, build2, []int{0}, []int{0}, residual)
		if err != nil {
			t.Fatal(err)
		}
		want := drain(t, hj)
		if name == "no residual" && len(want) == 0 {
			t.Fatal("oracle join produced no rows; fixture is degenerate")
		}
		if g, w := formatJoinRows(got), formatJoinRows(want); g != w {
			t.Errorf("%s: vectorized join differs from row oracle\nvectorized (%d rows):\n%s\nrow (%d rows):\n%s",
				name, len(got), g, len(want), w)
		}
		// The row protocol of the vectorized join must agree with its batch
		// protocol.
		probe3, build3 := joinTestInputs()
		vj2, _ := NewVectorizedHashJoin(probe3, build3, []int{0}, []int{0}, residual)
		rowDrain := drain(t, vj2)
		if g, w := formatJoinRows(rowDrain), formatJoinRows(want); g != w {
			t.Errorf("%s: vectorized join row protocol diverges from oracle", name)
		}
	}
}

// TestVectorizedHashJoinNullKeysNeverMatch pins SQL equality semantics for
// both hash joins: NULL keys match nothing, not even other NULLs.
func TestVectorizedHashJoinNullKeysNeverMatch(t *testing.T) {
	cols := []ColumnInfo{{Name: "k", Kind: value.KindInt}}
	nullRows := []Row{{value.Null()}, {value.NewInt(1)}, {value.Null()}}
	makeJoins := func() (Operator, Operator) {
		vj, _ := NewVectorizedHashJoin(NewValuesScan(cols, nullRows), NewValuesScan(cols, nullRows), []int{0}, []int{0}, nil)
		hj, _ := NewHashJoin(NewValuesScan(cols, nullRows), NewValuesScan(cols, nullRows), []int{0}, []int{0}, nil)
		return vj, hj
	}
	vj, hj := makeJoins()
	for name, op := range map[string]Operator{"vectorized": vj, "row": hj} {
		rows := drain(t, op)
		if len(rows) != 1 {
			t.Errorf("%s join: NULL keys matched: got %d rows, want 1 (the 1=1 pair)", name, len(rows))
		}
	}
}

// TestVectorizedHashJoinEmptyInputs: an empty build side yields no rows (the
// probe still drains cleanly); an empty probe side yields no rows without
// touching the build table's buckets.
func TestVectorizedHashJoinEmptyInputs(t *testing.T) {
	cols := []ColumnInfo{{Name: "k", Kind: value.KindInt}}
	some := []Row{{value.NewInt(1)}, {value.NewInt(2)}}
	vj, _ := NewVectorizedHashJoin(NewValuesScan(cols, some), NewValuesScan(cols, nil), []int{0}, []int{0}, nil)
	if rows := drainVec(t, vj); len(rows) != 0 {
		t.Errorf("empty build side produced %d rows", len(rows))
	}
	vj2, _ := NewVectorizedHashJoin(NewValuesScan(cols, nil), NewValuesScan(cols, some), []int{0}, []int{0}, nil)
	if rows := drainVec(t, vj2); len(rows) != 0 {
		t.Errorf("empty probe side produced %d rows", len(rows))
	}
}

// TestVectorizedHashJoinMultiKey covers the composite (encoded) key path,
// including NULL components on either side.
func TestVectorizedHashJoinMultiKey(t *testing.T) {
	cols := []ColumnInfo{
		{Name: "a", Kind: value.KindInt},
		{Name: "b", Kind: value.KindString},
	}
	rows := func(n int, nullEvery int) []Row {
		var out []Row
		for i := 0; i < n; i++ {
			a := value.NewInt(int64(i % 5))
			if nullEvery > 0 && i%nullEvery == 0 {
				a = value.Null()
			}
			out = append(out, Row{a, value.NewString(fmt.Sprintf("s%d", i%3))})
		}
		return out
	}
	vj, err := NewVectorizedHashJoin(NewValuesScan(cols, rows(60, 7)), NewValuesScan(cols, rows(45, 9)),
		[]int{0, 1}, []int{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := drainVec(t, vj)
	hj, _ := NewHashJoin(NewValuesScan(cols, rows(60, 7)), NewValuesScan(cols, rows(45, 9)),
		[]int{0, 1}, []int{0, 1}, nil)
	want := drain(t, hj)
	if len(want) == 0 {
		t.Fatal("oracle multi-key join produced no rows")
	}
	if g, w := formatJoinRows(got), formatJoinRows(want); g != w {
		t.Errorf("multi-key join differs from oracle\nvectorized:\n%s\nrow:\n%s", g, w)
	}
}

// vecBatchSource is a BatchOperator emitting pre-built (possibly compressed)
// batches, for probing the encoding-aware key paths directly.
type vecBatchSource struct {
	cols    []ColumnInfo
	batches []*Batch
	pos     int
	rows    batchRowCursor
}

func (s *vecBatchSource) Schema() []ColumnInfo { return s.cols }
func (s *vecBatchSource) Open() error          { s.pos = 0; s.rows.reset(); return nil }
func (s *vecBatchSource) Close() error         { return nil }
func (s *vecBatchSource) NextBatch() (*Batch, bool, error) {
	if s.pos >= len(s.batches) {
		return nil, false, nil
	}
	b := s.batches[s.pos]
	s.pos++
	return b, true, nil
}
func (s *vecBatchSource) Next() (Row, bool, error) { return s.rows.next(s.NextBatch) }

// TestVectorizedHashJoinCompressedProbeKeys probes with Const, RLE and Dict
// key vectors (hashing once per run / dictionary entry) and checks the result
// against the same join over the decompressed batches.
func TestVectorizedHashJoinCompressedProbeKeys(t *testing.T) {
	buildCols := []ColumnInfo{{Name: "bk", Kind: value.KindInt}, {Name: "w", Kind: value.KindInt}}
	var buildRows []Row
	for i := 0; i < 30; i++ {
		buildRows = append(buildRows, Row{value.NewInt(int64(i % 10)), value.NewInt(int64(i))})
	}
	probeCols := []ColumnInfo{{Name: "k", Kind: value.KindInt}, {Name: "v", Kind: value.KindInt}}

	mkPayload := func(n int) *vector.Vector {
		vals := make([]value.Value, n)
		for i := range vals {
			vals[i] = value.NewInt(int64(1000 + i))
		}
		return vector.NewFlat(vals)
	}
	rleKeys := vector.NewRLE(
		[]value.Value{value.NewInt(2), value.NewInt(5), value.NewInt(7)},
		[]int{40, 70, 100})
	dictCodes := make([]uint32, 100)
	for i := range dictCodes {
		dictCodes[i] = uint32(i % 4)
	}
	dictKeys := vector.NewDict(
		[]value.Value{value.NewInt(1), value.NewInt(3), value.NewInt(8), value.NewInt(42)},
		dictCodes)
	cases := map[string]*vector.Vector{
		"const": vector.NewConst(value.NewInt(4), 100),
		"rle":   rleKeys,
		"dict":  dictKeys,
	}
	for name, keyVec := range cases {
		compressed := &vecBatchSource{cols: probeCols, batches: []*Batch{
			NewBatchFromVectors([]*vector.Vector{keyVec, mkPayload(keyVec.Len())}),
		}}
		flat := &vecBatchSource{cols: probeCols, batches: []*Batch{
			NewBatchFromVectors([]*vector.Vector{
				vector.NewFlat(append([]value.Value(nil), keyVec.Flat()...)),
				mkPayload(keyVec.Len()),
			}),
		}}
		run := func(src Operator) []Row {
			vj, err := NewVectorizedHashJoin(src, NewValuesScan(buildCols, buildRows), []int{0}, []int{0}, nil)
			if err != nil {
				t.Fatal(err)
			}
			return drainVec(t, vj)
		}
		got, want := run(compressed), run(flat)
		if len(want) == 0 {
			t.Fatalf("%s: flat probe produced no rows; fixture is degenerate", name)
		}
		if g, w := formatJoinRows(got), formatJoinRows(want); g != w {
			t.Errorf("%s probe keys: compressed and flat probes disagree\ncompressed:\n%s\nflat:\n%s", name, g, w)
		}
	}
}

// TestVectorizedHashJoinSelectionOnProbe runs the join under a probe-side
// filter (so probe batches carry selection vectors) and checks against the
// oracle.
func TestVectorizedHashJoinSelectionOnProbe(t *testing.T) {
	pred := expr.NewBinary(expr.OpGt, expr.NewColumn(1, "p"), expr.NewConst(value.NewFloat(20)))
	probe, build := joinTestInputs()
	vj, _ := NewVectorizedHashJoin(NewFilter(probe, pred), build, []int{0}, []int{0}, nil)
	got := drainVec(t, vj)
	probe2, build2 := joinTestInputs()
	hj, _ := NewHashJoin(NewFilter(probe2, pred), build2, []int{0}, []int{0}, nil)
	want := drain(t, hj)
	if len(want) == 0 {
		t.Fatal("oracle join produced no rows")
	}
	if g, w := formatJoinRows(got), formatJoinRows(want); g != w {
		t.Errorf("filtered probe join differs from oracle\nvectorized:\n%s\nrow:\n%s", g, w)
	}
}

// bigJoinTables builds a probe table large enough to morselize (several leaf
// pages beyond DefaultMorselRows) and a build table with duplicate keys.
func bigJoinTables(t testing.TB) (*catalog.Table, *catalog.Table) {
	t.Helper()
	c := catalog.New(storage.NewPager(0), -1)
	facts, err := c.CreateTable("facts", []catalog.Column{
		{Name: "id", Kind: value.KindInt},
		{Name: "k", Kind: value.KindInt},
		{Name: "x", Kind: value.KindFloat},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	dims, err := c.CreateTable("dims", []catalog.Column{
		{Name: "dk", Kind: value.KindInt},
		{Name: "grp", Kind: value.KindInt},
	}, []string{"dk", "grp"})
	if err != nil {
		t.Fatal(err)
	}
	var factRows, dimRows [][]value.Value
	for i := 0; i < 3*DefaultMorselRows; i++ {
		factRows = append(factRows, []value.Value{
			value.NewInt(int64(i)), value.NewInt(int64(i % 500)), value.NewFloat(float64(i % 97)),
		})
	}
	// Build keys 0..499 appear twice, DefaultMorselRows/2 positions apart, so
	// duplicate-key buckets span build-morsel boundaries and exercise the
	// morsel-order merge of the parallel build.
	for i := 0; i < 3*DefaultMorselRows/2; i++ {
		dimRows = append(dimRows, []value.Value{
			value.NewInt(int64(i % (DefaultMorselRows / 2))), value.NewInt(int64(i % 7)),
		})
	}
	if err := facts.BulkLoad(factRows); err != nil {
		t.Fatal(err)
	}
	if err := dims.BulkLoad(dimRows); err != nil {
		t.Fatal(err)
	}
	return facts, dims
}

// TestVectorizedHashJoinParallelBuild: the morsel-parallel build (per-worker
// partitions merged in morsel order) must be bit-identical to the serial
// build — same matches, same order — at several worker counts.
func TestVectorizedHashJoinParallelBuild(t *testing.T) {
	facts, dims := bigJoinTables(t)
	mk := func() (*VectorizedHashJoin, *SeqScan) {
		buildScan := NewSeqScan(dims, nil)
		vj, err := NewVectorizedHashJoin(NewSeqScan(facts, nil), buildScan, []int{1}, []int{0}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return vj, buildScan
	}
	serialJoin, _ := mk()
	want := drainVec(t, serialJoin)
	if len(want) == 0 {
		t.Fatal("serial join produced no rows")
	}
	for _, workers := range []int{2, 4, 8} {
		parJoin, buildScan := mk()
		parJoin.SetParallelBuild(buildScan, nil, workers)
		if got := parJoin.BuildParallelism(); got != workers {
			t.Fatalf("BuildParallelism() = %d, want %d", got, workers)
		}
		got := drainVec(t, parJoin)
		if g, w := formatJoinRows(got), formatJoinRows(want); g != w {
			t.Errorf("workers=%d: parallel build result diverges from serial (%d vs %d rows)",
				workers, len(got), len(want))
		}
	}
}

// TestVectorizedHashJoinClonesShareBuild: probe-side clones created for
// morsel pipelines share one build; each clone sees the full table and their
// concatenated output in morsel order equals the unsplit join's output.
func TestVectorizedHashJoinClonesShareBuild(t *testing.T) {
	facts, dims := bigJoinTables(t)
	whole, err := NewVectorizedHashJoin(NewSeqScan(facts, nil), NewSeqScan(dims, nil), []int{1}, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := drainVec(t, whole)

	probe := NewSeqScan(facts, nil)
	shared, err := NewVectorizedHashJoin(NewSeqScan(facts, nil), NewSeqScan(dims, nil), []int{1}, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	parts, ok := probe.Morsels(DefaultMorselRows)
	if !ok {
		t.Fatal("probe table did not morselize")
	}
	var got []Row
	for _, part := range parts {
		clone := shared.CloneWithProbe(AsRowOperator(part))
		rows, err := DrainVectorized(clone)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rows...)
	}
	if g, w := formatJoinRows(got), formatJoinRows(want); g != w {
		t.Errorf("clone outputs concatenated in morsel order diverge from the unsplit join (%d vs %d rows)",
			len(got), len(want))
	}
}

// TestVectorizedHashJoinReopen: a serial join re-opened after a full drain
// rebuilds its table and produces the same result (Operator contract).
func TestVectorizedHashJoinReopen(t *testing.T) {
	cols := []ColumnInfo{{Name: "k", Kind: value.KindInt}}
	rows := []Row{{value.NewInt(1)}, {value.NewInt(2)}, {value.NewInt(1)}}
	vj, err := NewVectorizedHashJoin(NewValuesScan(cols, rows), NewValuesScan(cols, rows), []int{0}, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	first := drainVec(t, vj)
	second := drainVec(t, vj)
	if len(first) != 5 { // two k=1 probes x two k=1 build rows, plus 2=2
		t.Fatalf("first drain rows = %d, want 5", len(first))
	}
	if g, w := formatJoinRows(second), formatJoinRows(first); g != w {
		t.Fatalf("re-opened join diverges:\n%s\nvs\n%s", g, w)
	}
}
