package exec

import (
	"fmt"

	"oldelephant/internal/catalog"
	"oldelephant/internal/expr"
	"oldelephant/internal/value"
)

// NestedLoopJoin joins two inputs by materializing the right side and, for
// every left row, scanning the materialized rows and applying the join
// predicate (which sees the concatenated left++right row).
type NestedLoopJoin struct {
	Left, Right Operator
	Pred        expr.Expr

	rightRows []Row
	leftRow   Row
	leftOK    bool
	rightPos  int
	schema    []ColumnInfo
}

// NewNestedLoopJoin builds a nested-loop join.
func NewNestedLoopJoin(left, right Operator, pred expr.Expr) *NestedLoopJoin {
	return &NestedLoopJoin{Left: left, Right: right, Pred: pred,
		schema: concatSchemas(left.Schema(), right.Schema())}
}

// Schema implements Operator.
func (j *NestedLoopJoin) Schema() []ColumnInfo { return j.schema }

// Open implements Operator.
func (j *NestedLoopJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	rows, err := Drain(j.Right)
	if err != nil {
		return err
	}
	j.rightRows = rows
	j.leftOK = false
	j.rightPos = 0
	return nil
}

// Next implements Operator.
func (j *NestedLoopJoin) Next() (Row, bool, error) {
	for {
		if !j.leftOK {
			row, ok, err := j.Left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.leftRow = row
			j.leftOK = true
			j.rightPos = 0
		}
		for j.rightPos < len(j.rightRows) {
			right := j.rightRows[j.rightPos]
			j.rightPos++
			out := concatRows(j.leftRow, right)
			pass, err := expr.EvalBool(j.Pred, out)
			if err != nil {
				return nil, false, err
			}
			if pass {
				return out, true, nil
			}
		}
		j.leftOK = false
	}
}

// Close implements Operator.
func (j *NestedLoopJoin) Close() error {
	j.rightRows = nil
	return j.Left.Close()
}

// HashJoin performs an equi-join: the right (build) side is hashed on its key
// columns, then the left (probe) side streams through. An optional residual
// predicate is applied to the concatenated row. It is the row-at-a-time test
// oracle for VectorizedHashJoin, but shares the typed-key scheme: a single
// numeric key hashes as its value.NumericSortKey word (no string encoding),
// composite and string keys as the order-preserving encoded key, and rows
// whose key contains NULL never match (SQL equality semantics).
type HashJoin struct {
	Left, Right Operator
	LeftKeys    []int
	RightKeys   []int
	Residual    expr.Expr

	fast     map[uint64][]Row
	generic  map[string][]Row
	fastOK   bool
	keyBuf   []byte
	leftRow  Row
	matches  []Row
	matchPos int
	schema   []ColumnInfo
}

// NewHashJoin builds a hash join on the given key ordinals.
func NewHashJoin(left, right Operator, leftKeys, rightKeys []int, residual expr.Expr) (*HashJoin, error) {
	if len(leftKeys) == 0 || len(leftKeys) != len(rightKeys) {
		return nil, fmt.Errorf("exec: hash join requires matching, non-empty key lists")
	}
	return &HashJoin{Left: left, Right: right, LeftKeys: leftKeys, RightKeys: rightKeys,
		Residual: residual, fastOK: len(leftKeys) == 1,
		schema: concatSchemas(left.Schema(), right.Schema())}, nil
}

// Schema implements Operator.
func (j *HashJoin) Schema() []ColumnInfo { return j.schema }

// Open implements Operator.
func (j *HashJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	rows, err := Drain(j.Right)
	if err != nil {
		return err
	}
	j.fast, j.generic = nil, make(map[string][]Row)
	if j.fastOK {
		j.fast = make(map[uint64][]Row)
	}
	for _, r := range rows {
		if j.fastOK {
			if w, ok := expr.NumericKeyWord(r[j.RightKeys[0]]); ok {
				j.fast[w] = append(j.fast[w], r)
				continue
			}
		}
		var null bool
		j.keyBuf, null = expr.AppendKey(j.keyBuf[:0], r, j.RightKeys)
		if null {
			continue // NULL keys can never satisfy the equi-join
		}
		j.generic[string(j.keyBuf)] = append(j.generic[string(j.keyBuf)], r)
	}
	j.matches = nil
	j.matchPos = 0
	return nil
}

// probe returns the build rows matching the probe row's key (nil for NULL keys).
func (j *HashJoin) probe(row Row) []Row {
	if j.fastOK {
		if w, ok := expr.NumericKeyWord(row[j.LeftKeys[0]]); ok {
			return j.fast[w]
		}
	}
	var null bool
	j.keyBuf, null = expr.AppendKey(j.keyBuf[:0], row, j.LeftKeys)
	if null {
		return nil
	}
	return j.generic[string(j.keyBuf)]
}

// keysCompareEqual re-checks a hash-equal pair with value.Compare: the typed
// key word passes through float64, so two int64 keys beyond 2^53 can share a
// bucket even though SQL '=' (exact for int-int pairs) separates them.
func keysCompareEqual(left, right Row, leftKeys, rightKeys []int) bool {
	for i, lk := range leftKeys {
		if value.Compare(left[lk], right[rightKeys[i]]) != 0 {
			return false
		}
	}
	return true
}

// Next implements Operator.
func (j *HashJoin) Next() (Row, bool, error) {
	for {
		for j.matchPos < len(j.matches) {
			right := j.matches[j.matchPos]
			j.matchPos++
			if !keysCompareEqual(j.leftRow, right, j.LeftKeys, j.RightKeys) {
				continue
			}
			out := concatRows(j.leftRow, right)
			pass, err := expr.EvalBool(j.Residual, out)
			if err != nil {
				return nil, false, err
			}
			if pass {
				return out, true, nil
			}
		}
		row, ok, err := j.Left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		j.leftRow = row
		j.matches = j.probe(row)
		j.matchPos = 0
	}
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	j.fast, j.generic = nil, nil
	return j.Left.Close()
}

// MergeJoin equi-joins two inputs that are already sorted ascending on their
// key columns. Right rows with equal keys are buffered as a group so
// many-to-many matches (and repeated left keys) are produced correctly.
type MergeJoin struct {
	Left, Right Operator
	LeftKeys    []int
	RightKeys   []int
	Residual    expr.Expr

	schema   []ColumnInfo
	leftRow  Row
	leftOK   bool
	rightRow Row
	rightOK  bool
	group    []Row
	groupKey Row
	groupPos int
}

// NewMergeJoin builds a merge join; both inputs must be sorted ascending on
// their respective key columns.
func NewMergeJoin(left, right Operator, leftKeys, rightKeys []int, residual expr.Expr) (*MergeJoin, error) {
	if len(leftKeys) == 0 || len(leftKeys) != len(rightKeys) {
		return nil, fmt.Errorf("exec: merge join requires matching, non-empty key lists")
	}
	return &MergeJoin{Left: left, Right: right, LeftKeys: leftKeys, RightKeys: rightKeys,
		Residual: residual, schema: concatSchemas(left.Schema(), right.Schema())}, nil
}

// Schema implements Operator.
func (j *MergeJoin) Schema() []ColumnInfo { return j.schema }

// Open implements Operator.
func (j *MergeJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		return err
	}
	j.group, j.groupKey = nil, nil
	j.groupPos = 0
	var err error
	j.leftRow, j.leftOK, err = j.Left.Next()
	if err != nil {
		return err
	}
	j.rightRow, j.rightOK, err = j.Right.Next()
	return err
}

func keyOf(row Row, keys []int) Row {
	out := make(Row, len(keys))
	for i, k := range keys {
		out[i] = row[k]
	}
	return out
}

// keyHasNull reports whether any key column of the row is NULL. SQL equality
// never holds for NULL, so equi-join operators skip such rows instead of
// letting value.Compare (which orders NULL == NULL) pair them up.
func keyHasNull(row Row, keys []int) bool {
	for _, k := range keys {
		if row[k].IsNull() {
			return true
		}
	}
	return false
}

func compareKeys(a, b Row) int {
	for i := range a {
		if cmp := value.Compare(a[i], b[i]); cmp != 0 {
			return cmp
		}
	}
	return 0
}

func (j *MergeJoin) advanceLeft() error {
	var err error
	j.leftRow, j.leftOK, err = j.Left.Next()
	j.groupPos = 0
	return err
}

func (j *MergeJoin) advanceRight() error {
	var err error
	j.rightRow, j.rightOK, err = j.Right.Next()
	return err
}

// Next implements Operator.
func (j *MergeJoin) Next() (Row, bool, error) {
	for {
		if !j.leftOK {
			return nil, false, nil
		}
		// NULL keys never satisfy the equi-join; skip the left row outright
		// (right rows with NULL keys sort before every non-NULL key and are
		// passed over by the advance loop below).
		if keyHasNull(j.leftRow, j.LeftKeys) {
			if err := j.advanceLeft(); err != nil {
				return nil, false, err
			}
			continue
		}
		leftKey := keyOf(j.leftRow, j.LeftKeys)
		// Case 1: the buffered group matches the current left key.
		if j.groupKey != nil && compareKeys(leftKey, j.groupKey) == 0 {
			for j.groupPos < len(j.group) {
				right := j.group[j.groupPos]
				j.groupPos++
				out := concatRows(j.leftRow, right)
				pass, err := expr.EvalBool(j.Residual, out)
				if err != nil {
					return nil, false, err
				}
				if pass {
					return out, true, nil
				}
			}
			// Group exhausted for this left row: move to the next left row
			// (which may share the same key and replay the group).
			if err := j.advanceLeft(); err != nil {
				return nil, false, err
			}
			continue
		}
		// Case 2: the group is behind the left key (or absent): build the next
		// group by advancing the right side.
		for j.rightOK && compareKeys(keyOf(j.rightRow, j.RightKeys), leftKey) < 0 {
			if err := j.advanceRight(); err != nil {
				return nil, false, err
			}
		}
		if !j.rightOK {
			// No further right rows can match this or any later left key.
			return nil, false, nil
		}
		rightKey := keyOf(j.rightRow, j.RightKeys)
		if compareKeys(rightKey, leftKey) > 0 {
			// No right rows for this left key; advance left.
			if err := j.advanceLeft(); err != nil {
				return nil, false, err
			}
			continue
		}
		// rightKey == leftKey: buffer the whole group of equal right keys.
		j.group = nil
		j.groupKey = append(Row(nil), rightKey...)
		for j.rightOK && compareKeys(keyOf(j.rightRow, j.RightKeys), j.groupKey) == 0 {
			j.group = append(j.group, j.rightRow)
			if err := j.advanceRight(); err != nil {
				return nil, false, err
			}
		}
		j.groupPos = 0
	}
}

// Close implements Operator.
func (j *MergeJoin) Close() error {
	errL := j.Left.Close()
	errR := j.Right.Close()
	if errL != nil {
		return errL
	}
	return errR
}

// InnerSeekSpec describes the inner side of an index-nested-loop join: which
// table/index to probe and how to derive the probe range from the outer row.
// This is the operator behind the paper's band joins over c-tables, where the
// inner range [T1.f BETWEEN T0.f AND T0.f+T0.c-1] depends on the outer tuple.
type InnerSeekSpec struct {
	Table *catalog.Table
	// Index selects a secondary index to probe; nil probes the clustered index.
	Index *catalog.Index
	// LoExprs/HiExprs are evaluated over the OUTER row to produce the prefix
	// bounds of the probe. nil slices mean an open bound.
	LoExprs []expr.Expr
	HiExprs []expr.Expr
	LoIncl  bool
	HiIncl  bool
	// Cols are the base-table column ordinals the join produces for the inner side.
	Cols []int
}

// IndexNestedLoopJoin probes an index range for every outer row. The output
// row is outer ++ inner(Cols); Residual (over the output row) filters matches.
type IndexNestedLoopJoin struct {
	Outer    Operator
	Inner    InnerSeekSpec
	Residual expr.Expr

	schema    []ColumnInfo
	outerRow  Row
	innerOp   Operator
	innerOpen bool
}

// NewIndexNestedLoopJoin builds an index-nested-loop (band) join.
func NewIndexNestedLoopJoin(outer Operator, inner InnerSeekSpec, residual expr.Expr) (*IndexNestedLoopJoin, error) {
	if inner.Table == nil {
		return nil, fmt.Errorf("exec: inner seek requires a table")
	}
	if inner.Index == nil && !inner.Table.IsClustered() {
		return nil, fmt.Errorf("exec: inner seek on %q requires a clustered or secondary index", inner.Table.Name)
	}
	cols := inner.Cols
	if cols == nil {
		cols = allOrdinals(len(inner.Table.Columns))
		inner.Cols = cols
	}
	return &IndexNestedLoopJoin{
		Outer: outer, Inner: inner, Residual: residual,
		schema: concatSchemas(outer.Schema(), projectedSchema(inner.Table, cols)),
	}, nil
}

// Schema implements Operator.
func (j *IndexNestedLoopJoin) Schema() []ColumnInfo { return j.schema }

// Open implements Operator.
func (j *IndexNestedLoopJoin) Open() error {
	j.outerRow = nil
	j.innerOp = nil
	j.innerOpen = false
	return j.Outer.Open()
}

// evalBounds computes a bound prefix from expressions over the outer row.
func evalBounds(exprs []expr.Expr, outer Row) ([]value.Value, error) {
	if len(exprs) == 0 {
		return nil, nil
	}
	out := make([]value.Value, len(exprs))
	for i, e := range exprs {
		v, err := e.Eval(outer)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// openInner opens the inner range probe for one outer row. opened is false
// (with no error) when a bound expression evaluated to NULL: a NULL bound can
// never satisfy the join's range predicate, but a raw seek would treat it as
// the smallest key and return spurious rows, so the outer row is skipped.
func (j *IndexNestedLoopJoin) openInner(outer Row) (opened bool, err error) {
	lo, err := evalBounds(j.Inner.LoExprs, outer)
	if err != nil {
		return false, err
	}
	hi, err := evalBounds(j.Inner.HiExprs, outer)
	if err != nil {
		return false, err
	}
	for _, b := range lo {
		if b.IsNull() {
			return false, nil
		}
	}
	for _, b := range hi {
		if b.IsNull() {
			return false, nil
		}
	}
	var op Operator
	if j.Inner.Index != nil {
		op, err = NewIndexSeek(j.Inner.Index, lo, hi, j.Inner.LoIncl, j.Inner.HiIncl, j.Inner.Cols)
	} else {
		op, err = NewClusteredSeek(j.Inner.Table, lo, hi, j.Inner.LoIncl, j.Inner.HiIncl, j.Inner.Cols)
	}
	if err != nil {
		return false, err
	}
	if err := op.Open(); err != nil {
		return false, err
	}
	j.innerOp = op
	j.innerOpen = true
	return true, nil
}

// Next implements Operator.
func (j *IndexNestedLoopJoin) Next() (Row, bool, error) {
	for {
		if !j.innerOpen {
			row, ok, err := j.Outer.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.outerRow = row
			opened, err := j.openInner(row)
			if err != nil {
				return nil, false, err
			}
			if !opened {
				continue // NULL bound: this outer row cannot match
			}
		}
		for {
			inner, ok, err := j.innerOp.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				j.innerOp.Close()
				j.innerOpen = false
				break
			}
			out := concatRows(j.outerRow, inner)
			pass, err := expr.EvalBool(j.Residual, out)
			if err != nil {
				return nil, false, err
			}
			if pass {
				return out, true, nil
			}
		}
	}
}

// Close implements Operator.
func (j *IndexNestedLoopJoin) Close() error {
	if j.innerOpen {
		j.innerOp.Close()
		j.innerOpen = false
	}
	return j.Outer.Close()
}
