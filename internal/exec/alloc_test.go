package exec

import (
	"testing"
)

// TestProjectedScanFillZeroAllocsPerRow pins the steady-state allocation rate
// of the projected batch fill: once a serial scan's arena has grown to full
// batch size, re-executing the scan allocates only per-batch wrappers (the
// Batch, its vectors), never per-row storage — the arena is reused across
// executions, as a plan-cache lease would reuse it. A regression that
// re-allocates column buffers per batch or per row busts the bound
// immediately (1000 rows would add ≥1000 allocations).
func TestProjectedScanFillZeroAllocsPerRow(t *testing.T) {
	_, lineitem, _ := buildTestDB(t)
	// Numeric projection: l_orderkey (int), l_extendedprice (float). String
	// columns inherently allocate per value and are excluded from the pin.
	scan := NewSeqScan(lineitem, []int{0, 3})
	drainOnce := func() {
		if err := scan.Open(); err != nil {
			t.Fatal(err)
		}
		rows := 0
		for {
			b, ok, err := scan.NextBatch()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			rows += b.NumRows()
		}
		if rows != 1000 {
			t.Fatalf("scan produced %d rows, want 1000", rows)
		}
		if err := scan.Close(); err != nil {
			t.Fatal(err)
		}
	}
	drainOnce() // pay the arena growth ramp once
	perDrain := testing.AllocsPerRun(10, drainOnce)
	perRow := perDrain / 1000
	if perRow >= 0.05 {
		t.Fatalf("warm projected scan allocates %.3f/row (%.0f per 1000-row drain), want ~0",
			perRow, perDrain)
	}
}
