package exec

import (
	"fmt"
	"testing"

	"oldelephant/internal/catalog"
	"oldelephant/internal/storage"
	"oldelephant/internal/value"
)

// TestProjectedScanFillZeroAllocsPerRow pins the steady-state allocation rate
// of the projected batch fill: once a serial scan's arena has grown to full
// batch size, re-executing the scan allocates only per-batch wrappers (the
// Batch, its vectors), never per-row storage — the arena is reused across
// executions, as a plan-cache lease would reuse it. A regression that
// re-allocates column buffers per batch or per row busts the bound
// immediately (1000 rows would add ≥1000 allocations).
func TestProjectedScanFillZeroAllocsPerRow(t *testing.T) {
	_, lineitem, _ := buildTestDB(t)
	// Numeric projection: l_orderkey (int), l_extendedprice (float). String
	// columns inherently allocate per value and are excluded from the pin.
	scan := NewSeqScan(lineitem, []int{0, 3})
	drainOnce := func() {
		if err := scan.Open(); err != nil {
			t.Fatal(err)
		}
		rows := 0
		for {
			b, ok, err := scan.NextBatch()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			rows += b.NumRows()
		}
		if rows != 1000 {
			t.Fatalf("scan produced %d rows, want 1000", rows)
		}
		if err := scan.Close(); err != nil {
			t.Fatal(err)
		}
	}
	drainOnce() // pay the arena growth ramp once
	perDrain := testing.AllocsPerRun(10, drainOnce)
	perRow := perDrain / 1000
	if perRow >= 0.05 {
		t.Fatalf("warm projected scan allocates %.3f/row (%.0f per 1000-row drain), want ~0",
			perRow, perDrain)
	}
}

// TestProjectedStringScanFillZeroAllocsPerRow pins the steady-state
// allocation rate of string column decode. Two string columns exercise both
// fill paths: a low-distinct-count column that stays dictionary-encoded
// (alloc-free probe lookups against the interned dictionary) and a
// high-cardinality column that abandons the dictionary and decodes through
// the batch arena (one sealed-string allocation per batch, ~0.001/row).
// A regression to per-value string allocation adds ≥1000 allocations per
// drain and busts the bound immediately.
func TestProjectedStringScanFillZeroAllocsPerRow(t *testing.T) {
	c := catalog.New(storage.NewPager(0), -1)
	tbl, err := c.CreateTable("strings", []catalog.Column{
		{Name: "k", Kind: value.KindInt},
		{Name: "s_low", Kind: value.KindString},
		{Name: "s_high", Kind: value.KindString},
	}, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	lows := []string{"AIR", "RAIL", "SHIP", "TRUCK"}
	var rows [][]value.Value
	for i := 0; i < 1000; i++ {
		rows = append(rows, []value.Value{
			value.NewInt(int64(i)),
			value.NewString(lows[i%len(lows)]),
			value.NewString(fmt.Sprintf("note-%06d-%06d", i, i*7)),
		})
	}
	if err := tbl.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	scan := NewSeqScan(tbl, []int{1, 2})
	drainOnce := func() {
		if err := scan.Open(); err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			b, ok, err := scan.NextBatch()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			n += b.NumRows()
		}
		if n != 1000 {
			t.Fatalf("scan produced %d rows, want 1000", n)
		}
		if err := scan.Close(); err != nil {
			t.Fatal(err)
		}
	}
	drainOnce() // pay dictionary interning and arena growth once
	perDrain := testing.AllocsPerRun(10, drainOnce)
	perRow := perDrain / 1000
	if perRow >= 0.05 {
		t.Fatalf("warm projected string scan allocates %.3f/row (%.0f per 1000-row drain), want ~0",
			perRow, perDrain)
	}
}
