package exec

import (
	"fmt"
	"time"

	"oldelephant/internal/trace"
)

// Operator instrumentation for EXPLAIN ANALYZE. InstrumentPlan rewrites an
// operator tree so that every node reports rows, batches, calls and inclusive
// wall time into a trace.Span tree. Instrumentation is wrapper-based: a plan
// that is not instrumented contains no tracing code at all — the untraced hot
// path is byte-for-byte the same executable as before this package existed,
// which is how the "zero overhead when tracing is off" contract is met.
//
// Parallel operators (ParallelMerge and the parallelBreaker family) are
// instrumented as leaves: their worker goroutines must not share a Span, so
// the wrapper observes only the merged output stream and the static
// worker/morsel structure is reported as span attributes. The same applies to
// a vectorized hash join's parallel build, which reports build-side
// cardinality and worker count as attributes instead of a wrapped subtree.

// tracedRow instruments a row-only operator. It deliberately does NOT
// implement BatchOperator: AsBatchOperator must keep bridging the underlying
// operator through BatchSource exactly as it would unwrapped.
type tracedRow struct {
	op      Operator
	sp      *trace.Span
	onClose func(*trace.Span)
}

// Schema implements Operator.
func (t *tracedRow) Schema() []ColumnInfo { return t.op.Schema() }

// Open implements Operator.
func (t *tracedRow) Open() error {
	start := time.Now()
	err := t.op.Open()
	t.sp.Wall += time.Since(start)
	return err
}

// Next implements Operator.
func (t *tracedRow) Next() (Row, bool, error) {
	start := time.Now()
	row, ok, err := t.op.Next()
	t.sp.Wall += time.Since(start)
	t.sp.Calls++
	if ok {
		t.sp.Rows++
	}
	return row, ok, err
}

// Close implements Operator.
func (t *tracedRow) Close() error {
	start := time.Now()
	err := t.op.Close()
	t.sp.Wall += time.Since(start)
	if t.onClose != nil {
		t.onClose(t.sp)
	}
	return err
}

// tracedBatch instruments an operator that is batch-native (implements both
// protocols), preserving batch-nativeness so AsBatchOperator and the engine's
// protocol selection behave identically to the unwrapped plan.
type tracedBatch struct {
	op interface {
		Operator
		BatchOperator
	}
	sp      *trace.Span
	onClose func(*trace.Span)
}

// Schema implements Operator and BatchOperator.
func (t *tracedBatch) Schema() []ColumnInfo { return t.op.Schema() }

// Open implements Operator and BatchOperator.
func (t *tracedBatch) Open() error {
	start := time.Now()
	err := t.op.Open()
	t.sp.Wall += time.Since(start)
	return err
}

// Next implements Operator.
func (t *tracedBatch) Next() (Row, bool, error) {
	start := time.Now()
	row, ok, err := t.op.Next()
	t.sp.Wall += time.Since(start)
	t.sp.Calls++
	if ok {
		t.sp.Rows++
	}
	return row, ok, err
}

// NextBatch implements BatchOperator.
func (t *tracedBatch) NextBatch() (*Batch, bool, error) {
	start := time.Now()
	b, ok, err := t.op.NextBatch()
	t.sp.Wall += time.Since(start)
	t.sp.Calls++
	if ok {
		t.sp.Batches++
		t.sp.Rows += int64(b.NumRows())
	}
	return b, ok, err
}

// Close implements Operator and BatchOperator.
func (t *tracedBatch) Close() error {
	start := time.Now()
	err := t.op.Close()
	t.sp.Wall += time.Since(start)
	if t.onClose != nil {
		t.onClose(t.sp)
	}
	return err
}

// InstrumentPlan wraps every operator of the tree rooted at root with a
// tracing collector and returns the instrumented root together with the root
// of the matching span tree. The returned operator must be executed instead
// of the original (child links inside the original tree are rewritten to
// point at wrappers). Instrumented plans must not be returned to a plan
// cache.
func InstrumentPlan(root Operator) (Operator, *trace.Span) {
	return instrument(root)
}

// wrap builds the protocol-preserving wrapper for op.
func wrap(op Operator, name string, onClose func(*trace.Span)) (Operator, *trace.Span) {
	sp := trace.New(name)
	if b, ok := op.(interface {
		Operator
		BatchOperator
	}); ok {
		return &tracedBatch{op: b, sp: sp, onClose: onClose}, sp
	}
	return &tracedRow{op: op, sp: sp, onClose: onClose}, sp
}

// instrument recursively wraps op's children (rewriting the exported child
// fields in place), then wraps op itself.
func instrument(op Operator) (Operator, *trace.Span) {
	switch o := op.(type) {
	case *SeqScan:
		return wrap(o, fmt.Sprintf("SeqScan(%s)", o.Table.Name), nil)
	case *ClusteredSeek:
		return wrap(o, fmt.Sprintf("ClusteredSeek(%s)", o.Table.Name), nil)
	case *IndexSeek:
		return wrap(o, fmt.Sprintf("IndexSeek(%s.%s)", o.Index.Table.Name, o.Index.Name), nil)
	case *ValuesScan:
		return wrap(o, "ValuesScan", nil)
	case *Filter:
		child, csp := instrument(o.Input)
		o.Input = child
		return adopt(wrap(o, "Filter", nil))(csp)
	case *Project:
		child, csp := instrument(o.Input)
		o.Input = child
		return adopt(wrap(o, "Project", nil))(csp)
	case *Limit:
		child, csp := instrument(o.Input)
		o.Input = child
		return adopt(wrap(o, "Limit", nil))(csp)
	case *Sort:
		child, csp := instrument(o.Input)
		o.Input = child
		return adopt(wrap(o, "Sort", nil))(csp)
	case *HashAggregate:
		child, csp := instrument(o.Input)
		o.Input = child
		return adopt(wrap(o, "HashAggregate", nil))(csp)
	case *StreamAggregate:
		child, csp := instrument(o.Input)
		o.Input = child
		return adopt(wrap(o, "StreamAggregate", nil))(csp)
	case *RowSource:
		// Protocol adapters are invisible in the trace: descend through them
		// without a span of their own. (BatchSource never appears here — it
		// only exists inside AsBatchOperator results built at drain time,
		// after instrumentation.)
		if inner, ok := o.Input.(Operator); ok {
			child, csp := instrument(inner)
			o.Input = AsBatchOperator(child)
			return o, csp
		}
		return wrap(o, "RowSource", nil)
	case *NestedLoopJoin:
		l, lsp := instrument(o.Left)
		r, rsp := instrument(o.Right)
		o.Left, o.Right = l, r
		return adopt(wrap(o, "NestedLoopJoin", nil))(lsp, rsp)
	case *HashJoin:
		l, lsp := instrument(o.Left)
		r, rsp := instrument(o.Right)
		o.Left, o.Right = l, r
		return adopt(wrap(o, "HashJoin", nil))(lsp, rsp)
	case *MergeJoin:
		l, lsp := instrument(o.Left)
		r, rsp := instrument(o.Right)
		o.Left, o.Right = l, r
		return adopt(wrap(o, "MergeJoin", nil))(lsp, rsp)
	case *IndexNestedLoopJoin:
		outer, osp := instrument(o.Outer)
		o.Outer = outer
		return adopt(wrap(o, "IndexNestedLoopJoin", nil))(osp)
	case *VectorizedHashJoin:
		probe, psp := instrument(o.Probe)
		o.Probe = probe
		onClose := func(sp *trace.Span) {
			o.shared.mu.Lock()
			if o.shared.table != nil {
				sp.SetAttr("build_rows", int64(o.shared.table.numRows()))
			}
			o.shared.mu.Unlock()
			if w := o.BuildParallelism(); w > 1 {
				sp.SetAttr("build_workers", int64(w))
			}
		}
		if o.shared.src == nil && !o.isClone {
			// Serial build: the build drain pulls through j.Build, so the
			// build subtree can be instrumented like any other.
			build, bsp := instrument(o.Build)
			o.Build = build
			return adopt(wrap(o, "VectorizedHashJoin", onClose))(psp, bsp)
		}
		// Parallel build bypasses j.Build (it re-partitions the scan), so the
		// build side stays unwrapped and reports through attributes only.
		return adopt(wrap(o, "VectorizedHashJoin", onClose))(psp)
	case *ParallelMerge:
		w, sp := wrap(o, "ParallelMerge", nil)
		sp.SetAttr("workers", int64(min(o.workers, len(o.parts))))
		sp.SetAttr("morsels", int64(len(o.parts)))
		return w, sp
	case *ParallelHashAggregate:
		return wrapBreaker(o, &o.parallelBreaker)
	case *ParallelStreamAggregate:
		return wrapBreaker(o, &o.parallelBreaker)
	case *ParallelSort:
		return wrapBreaker(o, &o.parallelBreaker)
	default:
		// Unknown operator: trace it as a leaf named by its dynamic type.
		return wrap(o, fmt.Sprintf("%T", o), nil)
	}
}

// wrapBreaker instruments a parallel pipeline breaker as a leaf with
// worker/morsel attributes (its internals run on worker goroutines and must
// not share a span).
func wrapBreaker(op Operator, b *parallelBreaker) (Operator, *trace.Span) {
	w, sp := wrap(op, b.name, nil)
	sp.SetAttr("workers", int64(min(b.workers, len(b.parts))))
	sp.SetAttr("morsels", int64(len(b.parts)))
	return w, sp
}

// adopt attaches child spans to a freshly wrapped parent span.
func adopt(op Operator, sp *trace.Span) func(children ...*trace.Span) (Operator, *trace.Span) {
	return func(children ...*trace.Span) (Operator, *trace.Span) {
		sp.Children = append(sp.Children, children...)
		return op, sp
	}
}
