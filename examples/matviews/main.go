// This example demonstrates the Row(MV) strategy of Section 2.1: generalized
// materialized views that answer the workload for any parameter value, and
// the view matching that routes queries to them.
package main

import (
	"fmt"
	"log"

	elephant "oldelephant"
)

func main() {
	db := elephant.Open(elephant.Options{})
	if err := db.LoadTPCH(0.005); err != nil {
		log.Fatal(err)
	}

	// The paper's MV2,3 (it answers Q1, Q2 and Q3 for any constant) and MV7.
	views := map[string]string{
		"mv23": "SELECT l_shipdate, l_suppkey, COUNT(*) AS cnt FROM lineitem GROUP BY l_shipdate, l_suppkey",
		"mv7": "SELECT c_nationkey, l_returnflag, SUM(l_extendedprice) AS revenue " +
			"FROM lineitem, orders, customer " +
			"WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey " +
			"GROUP BY l_returnflag, c_nationkey",
	}
	for name, def := range views {
		if err := db.CreateMaterializedView(name, def); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("created %s\n", name)
	}

	// Q2 with two different constants: both are answered by mv23 even though
	// neither matches the view definition literally.
	for _, day := range []string{"1995-03-15", "1997-11-01"} {
		q := "SELECT l_suppkey, COUNT(*) FROM lineitem WHERE l_shipdate = DATE '" + day + "' GROUP BY l_suppkey"
		rewritten, matched, err := db.Views().RewriteSQL(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nQ2 (D = %s), matched=%v\n  rewritten: %s\n", day, matched, rewritten)

		db.ResetBufferPool()
		direct, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		db.ResetBufferPool()
		viaView, usedView, err := db.QueryUsingViews(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  direct: %3d groups, %5d pages   via view (%v): %3d groups, %5d pages\n",
			len(direct.Rows), direct.Stats.IO.PageReads, usedView, len(viaView.Rows), viaView.Stats.IO.PageReads)
	}

	// Q7: the view holds one row per (nation, returnflag), so the query reads
	// almost nothing — this is the case the paper reports as 1,400x better
	// than the C-store lower bound.
	q7 := `SELECT c_nationkey, SUM(l_extendedprice)
	       FROM lineitem, orders, customer
	       WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey AND l_returnflag = 'R'
	       GROUP BY c_nationkey`
	db.ResetBufferPool()
	res, usedView, err := db.QueryUsingViews(q7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQ7 via %v: %d nations, %d pages read\n", usedView, len(res.Rows), res.Stats.IO.PageReads)
}
