// This example reproduces the Section 2.2.3 "additional index-based
// strategies" discussion: a query whose predicates are on columns deep in
// the sort order (c and d of a table sorted by a, b, c, d). A C-store must
// either scan those columns or seek once per (a, b) combination; with
// c-tables the covering v indexes answer each predicate directly and the
// band join intersects the qualifying position ranges.
package main

import (
	"fmt"
	"log"

	elephant "oldelephant"
	"oldelephant/internal/value"
)

func main() {
	db := elephant.Open(elephant.Options{})
	if _, err := db.Execute("CREATE TABLE wide (a INT, b INT, c INT, d INT, PRIMARY KEY (a, b, c, d))"); err != nil {
		log.Fatal(err)
	}
	var rows []elephant.Row
	for i := 0; i < 50000; i++ {
		rows = append(rows, elephant.Row{
			value.NewInt(int64(i / 2500)),
			value.NewInt(int64(i / 250 % 10)),
			value.NewInt(int64(i % 100)),
			value.NewInt(int64(i % 61)),
		})
	}
	if err := db.BulkLoad("wide", rows); err != nil {
		log.Fatal(err)
	}
	if _, err := db.BuildCTableDesign("w", "SELECT a, b, c, d FROM wide",
		[]string{"a", "b", "c", "d"}, []string{"a", "b", "c", "d"}); err != nil {
		log.Fatal(err)
	}

	rowQuery := "SELECT a, b, c, d FROM wide WHERE c = 10 AND d = 20"
	ctableQuery := `SELECT TC.v, TD.v, TC.f, TC.c
	                FROM w_c TC, w_d TD
	                WHERE TC.v = 10 AND TD.v = 20
	                  AND TD.f BETWEEN TC.f AND TC.f + TC.c - 1`

	db.ResetBufferPool()
	direct, err := db.Query(rowQuery)
	if err != nil {
		log.Fatal(err)
	}
	db.ResetBufferPool()
	viaCTables, err := db.Query(ctableQuery)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("predicates on columns deep in the sort order (c = 10 AND d = 20)")
	fmt.Printf("%-28s %8s %12s\n", "strategy", "rows", "pages read")
	fmt.Printf("%-28s %8d %12d\n", "row store (clustered scan)", len(direct.Rows), direct.Stats.IO.PageReads)
	fmt.Printf("%-28s %8d %12d\n", "c-tables (v-index seeks)", len(viaCTables.Rows), viaCTables.Stats.IO.PageReads)
	fmt.Println("\nrow-store plan: ", direct.Plan)
	fmt.Println("c-table plan:   ", viaCTables.Plan)
}
