// Example client: start a serving instance in-process, talk to it over both
// the in-process session API and the TCP wire protocol, and read the
// server's metrics — the minimal end-to-end tour of the serving layer
// (sessions, prepared statements, the plan cache and admission control).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net"

	elephant "oldelephant"
)

func main() {
	log.SetFlags(0)

	// An engine with a little TPC-H data, wrapped by a server: 2 cores of
	// budget shared by all concurrent queries.
	db := elephant.Open(elephant.Options{})
	if err := db.LoadTPCH(0.005); err != nil {
		log.Fatal(err)
	}
	srv := db.Serve(elephant.ServerOptions{CoreBudget: 2})
	defer srv.Close()

	// In-process session: ad-hoc query, then a prepared statement executed
	// twice — the second execution leases the cached plan.
	sess, err := srv.Session()
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Query("SELECT COUNT(*) FROM lineitem")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lineitem rows: %s\n", res.Rows[0][0])

	if err := sess.Prepare("daily", "SELECT l_shipdate, COUNT(*) FROM lineitem WHERE l_shipdate > DATE '1997-06-01' GROUP BY l_shipdate"); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err = sess.ExecPrepared("daily")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("daily counts: %d groups (plan cached: %v)\n", len(res.Rows), res.Stats.PlanCached)
	}

	// Wire protocol: the same server on a TCP listener, one JSON request per
	// line. This is exactly what `elephantsql -connect` speaks.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, `{"op":"query","sql":"SELECT c_nationkey, COUNT(*) FROM customer GROUP BY c_nationkey"}`+"\n")
	var resp struct {
		OK       bool    `json:"ok"`
		RowCount int     `json:"row_count"`
		WallUS   int64   `json:"wall_us"`
		Rows     [][]any `json:"rows"`
	}
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wire query: ok=%v, %d nations in %dus\n", resp.OK, resp.RowCount, resp.WallUS)

	// Server health: QPS, latency percentiles, plan-cache hit rate.
	m := srv.Metrics()
	fmt.Printf("served %d queries, p50 %v, plan-cache hit rate %.0f%%\n",
		m.Queries, m.P50, 100*m.PlanCache.HitRate())
}
