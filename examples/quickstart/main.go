// Quickstart: open a database, create a table, insert rows, run queries,
// and look at plans and I/O statistics through the public API.
package main

import (
	"fmt"
	"log"

	elephant "oldelephant"
)

func main() {
	db := elephant.Open(elephant.Options{})

	must := func(q string) *elephant.Result {
		res, err := db.Execute(q)
		if err != nil {
			log.Fatalf("%s\n  -> %v", q, err)
		}
		return res
	}

	// Schema with a clustered (primary) key and a covering secondary index.
	must(`CREATE TABLE sales (
		day DATE, region VARCHAR(16), product INT, amount DOUBLE,
		PRIMARY KEY (day, region))`)
	must(`CREATE INDEX ix_product ON sales (product) INCLUDE (amount)`)

	// A few rows via plain SQL.
	must(`INSERT INTO sales VALUES
		(DATE '2008-01-01', 'EMEA', 1, 100.0),
		(DATE '2008-01-01', 'AMER', 2, 250.0),
		(DATE '2008-01-02', 'EMEA', 1, 75.0),
		(DATE '2008-01-02', 'APAC', 3, 310.0),
		(DATE '2008-01-03', 'AMER', 1, 42.0)`)

	// An aggregate query; the planner picks a clustered seek and stream
	// aggregation because the predicate and grouping follow the clustered key.
	res := must(`SELECT day, COUNT(*), SUM(amount)
	             FROM sales WHERE day >= DATE '2008-01-02' GROUP BY day`)
	fmt.Println("columns:", res.Columns)
	for _, row := range res.Rows {
		fmt.Println("  ", row[0], row[1], row[2])
	}
	fmt.Println("plan:   ", res.Plan)
	fmt.Printf("I/O:     %d pages (%d sequential, %d random), %v\n\n",
		res.Stats.IO.PageReads, res.Stats.IO.SeqReads, res.Stats.IO.RandReads, res.Stats.Wall)

	// The covering index answers this one without touching the base table.
	res = must(`SELECT product, SUM(amount) FROM sales WHERE product = 1 GROUP BY product`)
	fmt.Println("covering-index query plan:", res.Plan)

	// TPC-H in one call, then one of the paper's queries.
	if err := db.LoadTPCH(0.001); err != nil {
		log.Fatal(err)
	}
	res = must(`SELECT l_shipdate, COUNT(*) FROM lineitem
	            WHERE l_shipdate > DATE '1998-06-01' GROUP BY l_shipdate LIMIT 5`)
	fmt.Printf("\nTPC-H Q1 (first %d groups):\n", len(res.Rows))
	for _, row := range res.Rows {
		fmt.Println("  ", row[0], row[1])
	}
}
