// This example walks through the paper's central contribution: building
// c-tables (Section 2.2.1) for the D1 projection over TPC-H lineitem,
// mechanically rewriting Q3 onto them (Section 2.2.2), and comparing the
// result and the I/O of the original and rewritten queries.
package main

import (
	"fmt"
	"log"

	elephant "oldelephant"
)

func main() {
	db := elephant.Open(elephant.Options{})
	if err := db.LoadTPCH(0.005); err != nil {
		log.Fatal(err)
	}

	// Build the c-tables of D1: (lineitem | l_shipdate, l_suppkey).
	design, err := db.BuildCTableDesign("d1",
		"SELECT l_shipdate, l_suppkey FROM lineitem",
		[]string{"l_shipdate", "l_suppkey"},
		[]string{"l_shipdate", "l_suppkey"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Design %s over %d source rows:\n", design.Name, design.NumRows)
	for _, ct := range design.Columns {
		repr := "(f, v, c) runs"
		if ct.Dense {
			repr = "(f, v) dense"
		}
		fmt.Printf("  %-18s -> table %-18s %8d rows  %s\n", ct.Column, ct.Table, ct.Runs, repr)
	}

	// The paper's Q3 with an arbitrary parameter.
	q3 := "SELECT l_suppkey, COUNT(*) FROM lineitem WHERE l_shipdate > DATE '1997-06-01' GROUP BY l_suppkey"
	rw := elephant.NewRewriter(design)
	rewritten, err := rw.RewriteSQL(q3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nOriginal: ", q3)
	fmt.Println("Rewritten:", rewritten)

	// Run both cold and compare.
	db.ResetBufferPool()
	orig, err := db.Query(q3)
	if err != nil {
		log.Fatal(err)
	}
	db.ResetBufferPool()
	rew, err := db.Query(rewritten)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-10s %8s %12s %s\n", "strategy", "groups", "pages read", "plan")
	fmt.Printf("%-10s %8d %12d %s\n", "Row", len(orig.Rows), orig.Stats.IO.PageReads, orig.Plan)
	fmt.Printf("%-10s %8d %12d %s\n", "Row(Col)", len(rew.Rows), rew.Stats.IO.PageReads, rew.Plan)

	// Also show the plain (Figure 4a) rewriting without the range collapse.
	rw.DisableRangeCollapse = true
	plain, _ := rw.RewriteSQL(q3)
	fmt.Println("\nWithout the Figure 4(b) optimization:", plain)
}
