// Example observe: the observability tour. Starts a serving instance with a
// little TPC-H data, runs a mixed workload against it, then inspects the
// engine from every angle this layer exposes:
//
//   - EXPLAIN ANALYZE over the wire — the annotated operator tree with
//     per-operator row counts, batch counts and wall times;
//   - the Prometheus /metrics exposition served by the observability HTTP
//     listener (elephantd's -http flag mounts the same handler);
//   - the workload log — one normalized record per executed statement, the
//     input a physical-design advisor mines for candidate indexes and
//     projections;
//   - the slow-query log with its runtime-settable threshold.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http/httptest"
	"strings"
	"time"

	elephant "oldelephant"
	"oldelephant/internal/server"
)

func main() {
	log.SetFlags(0)

	db := elephant.Open(elephant.Options{})
	if err := db.LoadTPCH(0.005); err != nil {
		log.Fatal(err)
	}
	srv := db.Serve(elephant.ServerOptions{CoreBudget: 2})
	defer srv.Close()

	// Run a small mixed workload so there is something to observe: the same
	// statement shape resubmitted with different literals, plus two other
	// shapes. Every execution lands in the workload log.
	sess, err := srv.Session()
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	workload := []string{
		"SELECT COUNT(*) FROM lineitem WHERE l_quantity < 10",
		"SELECT COUNT(*) FROM lineitem WHERE l_quantity < 25",
		"SELECT COUNT(*) FROM lineitem WHERE l_quantity < 40",
		"SELECT l_returnflag, SUM(l_extendedprice) FROM lineitem GROUP BY l_returnflag",
		"SELECT o_orderdate, COUNT(*) FROM orders GROUP BY o_orderdate",
	}
	for _, q := range workload {
		if _, err := sess.Execute(q); err != nil {
			log.Fatal(err)
		}
	}

	// 1. EXPLAIN ANALYZE over the TCP wire protocol, exactly as a client
	// would use it: the response carries the rendered plan+trace lines as
	// rows and the structured span tree in the trace field.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(bufio.NewReader(conn))
	req := server.Request{Op: "query", SQL: "EXPLAIN ANALYZE SELECT l_returnflag, COUNT(*), SUM(l_quantity) " +
		"FROM lineitem WHERE l_shipdate > DATE '1996-01-01' GROUP BY l_returnflag"}
	if err := enc.Encode(req); err != nil {
		log.Fatal(err)
	}
	var resp server.Response
	if err := dec.Decode(&resp); err != nil {
		log.Fatal(err)
	}
	if !resp.OK {
		log.Fatal(resp.Error)
	}
	fmt.Println("=== EXPLAIN ANALYZE (over the wire) ===")
	for _, row := range resp.Rows {
		fmt.Printf("  %s\n", row[0])
	}
	if resp.Trace != nil {
		fmt.Printf("structured trace: root=%s spans=%d leaf rows=%d\n\n",
			resp.Trace.Name, resp.Trace.NumSpans(), resp.Trace.LeafRows())
	}

	// 2. The Prometheus exposition. elephantd serves this on -http; here the
	// handler is driven directly so the example needs no second listener.
	fmt.Println("=== /metrics (Prometheus exposition, elephant_* series) ===")
	rec := httptest.NewRecorder()
	srv.HTTPHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	printMatching(rec.Body, "elephant_queries_total", "elephant_plan_cache_hits_total",
		"elephant_pager_cache_hits_total", "elephant_workload_records_total",
		"elephant_query_duration_seconds_count")
	fmt.Println()

	// 3. The workload log: the advisor's raw material. Fingerprints group
	// literal-varying resubmissions of the same statement text shape after
	// case/whitespace normalization; the plan hash groups statements that
	// executed the same physical plan shape.
	fmt.Println("=== workload log (advisor input) ===")
	byPlan := map[string]int{}
	for _, rec := range srv.Workload(0) {
		byPlan[rec.PlanHash]++
		fmt.Printf("  wall=%5dus rows_out=%-4d plan=%s  %.60s\n", rec.WallUS, rec.RowsOut, rec.PlanHash[:8], rec.SQL)
	}
	for hash, n := range byPlan {
		if n > 1 {
			fmt.Printf("plan %s... executed %d times — a candidate for physical-design tuning\n", hash[:8], n)
		}
	}
	fmt.Println()

	// 4. The slow-query log, with its threshold dropped at runtime (the wire
	// "set" op's slow_ms does the same server-wide) so everything qualifies.
	srv.SetSlowThreshold(time.Nanosecond)
	if _, err := sess.Execute("SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== slow-query log ===")
	for _, s := range srv.Metrics().Slow {
		fmt.Printf("  wall=%v queue=%v rows=%d io_reads=%d  %.60s\n", s.Wall.Round(time.Microsecond), s.Queue, s.Rows, s.IO.PageReads, s.SQL)
	}
}

// printMatching echoes the exposition lines whose series match one of the
// given prefixes.
func printMatching(r io.Reader, prefixes ...string) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		for _, p := range prefixes {
			if strings.HasPrefix(line, p) {
				fmt.Printf("  %s\n", line)
			}
		}
	}
}
